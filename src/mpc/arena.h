// Flat per-job arenas for the exchange data path — the buffer-ownership
// contract the engine's routing (and, later, the multi-process transport)
// is built on.
//
// One communication wave delivers into ONE contiguous buffer: the router
// counts per-destination words (pass 1), lays the buffer out radix-style by
// destination, then scatters every payload into its slot (pass 2). A
// receiver gets `MpcDelivery` records whose payloads are `std::span` views
// into that buffer — no per-message allocation, no per-message copy on the
// receive side.
//
// Ownership and lifetime rules:
//   * The buffer behind a wave is an `ArenaBlock`, leased from the
//     cluster's `ArenaPool` and owned by the `WaveInboxes` the engine
//     returns. Every payload span is valid exactly as long as that
//     `WaveInboxes` (or the `BatchInboxes` vector holding it) is alive —
//     including across later waves of the same batch, and after the
//     Cluster itself is gone (the lease keeps the pool alive).
//   * Moving a `WaveInboxes`/`BatchInboxes` never invalidates spans (the
//     heap blocks do not move). Copying is disabled.
//   * When a `WaveInboxes` dies, its block returns to the pool and is
//     reused by a later wave — `cluster.arena_reuses` counts these, and
//     `cluster.arena_bytes` tracks the high-water block footprint.
//
// `MPCSTAB_NO_ARENA` (mirroring `MPCSTAB_NO_BATCH`) routes delivery
// through the legacy per-message storage path instead: every payload keeps
// its own heap vector (`cluster.arena_fallback_msgs` counts them). The
// paper-model accounting and the delivered bytes are bit-identical either
// way — the toggle exists so benches can A/B the allocator pressure and so
// sceptical readers can diff the two engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace mpcstab {

/// Whether the engine routes waves through flat arenas (default; start with
/// MPCSTAB_NO_ARENA set to come up disabled) or through legacy per-message
/// payload storage. Process-wide; reads are relaxed-atomic, so toggling
/// mid-transfer is a test-only move.
bool arena_exchange_enabled();
void set_arena_exchange(bool enabled);

/// One delivered message: the destination machine plus a view of the
/// payload words. The view aliases the owning wave's arena block (or its
/// legacy per-message storage) — see the lifetime rules in the file
/// comment.
struct MpcDelivery {
  std::uint32_t dst = 0;
  std::span<const std::uint64_t> payload;
};

/// Backing storage of one delivered wave. `words` is the contiguous
/// payload buffer (arena path); `legacy` holds per-message vectors instead
/// when the arena is disabled. `deliveries` are the per-machine inboxes,
/// grouped by destination via `offsets` (machines + 1 entries).
struct ArenaBlock {
  std::vector<std::uint64_t> words;
  std::vector<MpcDelivery> deliveries;
  std::vector<std::size_t> offsets;
  std::vector<std::vector<std::uint64_t>> legacy;

  /// Clears contents, keeping capacity — the point of pooling.
  void reset() {
    words.clear();
    deliveries.clear();
    offsets.clear();
    legacy.clear();
  }

  /// Resident footprint of the block's buffers (for cluster.arena_bytes).
  std::uint64_t capacity_bytes() const {
    return words.capacity() * sizeof(std::uint64_t) +
           deliveries.capacity() * sizeof(MpcDelivery) +
           offsets.capacity() * sizeof(std::size_t) +
           legacy.capacity() * sizeof(std::vector<std::uint64_t>);
  }
};

class ArenaPool;

/// Move-only ownership of one ArenaBlock. Returns the block to its pool on
/// destruction; holds the pool alive, so leases may outlive the Cluster
/// that created them.
class ArenaLease {
 public:
  ArenaLease() = default;
  ArenaLease(std::shared_ptr<ArenaPool> pool,
             std::unique_ptr<ArenaBlock> block)
      : pool_(std::move(pool)), block_(std::move(block)) {}
  ArenaLease(ArenaLease&&) = default;
  ArenaLease& operator=(ArenaLease&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::move(other.pool_);
      block_ = std::move(other.block_);
    }
    return *this;
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  ~ArenaLease() { release(); }

  ArenaBlock* block() const { return block_.get(); }
  explicit operator bool() const { return block_ != nullptr; }

 private:
  void release();

  std::shared_ptr<ArenaPool> pool_;
  std::unique_ptr<ArenaBlock> block_;
};

/// A free list of ArenaBlocks shared by one Cluster's waves ("per-job":
/// clusters are per-request objects and jobs do not share them). Acquire
/// is thread-safe — batched waves route on the worker pool.
class ArenaPool : public std::enable_shared_from_this<ArenaPool> {
 public:
  /// Leases a block (reusing a returned one when available — counted as
  /// cluster.arena_reuses — or allocating a fresh one).
  ArenaLease acquire();

 private:
  friend class ArenaLease;
  void put_back(std::unique_ptr<ArenaBlock> block);

  std::mutex mutex_;
  std::vector<std::unique_ptr<ArenaBlock>> free_;
};

/// Per-machine inboxes of one communication wave, backed by one leased
/// arena block. `inboxes[m]` is machine m's inbox: deliveries in the
/// canonical serial order (senders in machine order, each sender's
/// messages FIFO). Move-only; spans stay valid for the object's lifetime.
class WaveInboxes {
 public:
  WaveInboxes() = default;
  WaveInboxes(WaveInboxes&&) = default;
  WaveInboxes& operator=(WaveInboxes&&) = default;
  WaveInboxes(const WaveInboxes&) = delete;
  WaveInboxes& operator=(const WaveInboxes&) = delete;

  /// Machines covered (0 for a default-constructed instance).
  std::size_t machines() const {
    const ArenaBlock* b = lease_.block();
    return b == nullptr || b->offsets.empty() ? 0 : b->offsets.size() - 1;
  }

  /// Machine m's inbox.
  std::span<const MpcDelivery> operator[](std::size_t machine) const {
    const ArenaBlock* b = lease_.block();
    if (b == nullptr || machine + 1 >= b->offsets.size()) return {};
    return std::span<const MpcDelivery>(
        b->deliveries.data() + b->offsets[machine],
        b->offsets[machine + 1] - b->offsets[machine]);
  }

  /// Total deliveries across all machines.
  std::size_t total_messages() const {
    const ArenaBlock* b = lease_.block();
    return b == nullptr ? 0 : b->deliveries.size();
  }

  /// Iteration over per-machine inboxes (machine 0 first), so range-for
  /// code written against the old vector-of-vectors API keeps working.
  class const_iterator {
   public:
    const_iterator(const WaveInboxes* wave, std::size_t machine)
        : wave_(wave), machine_(machine) {}
    std::span<const MpcDelivery> operator*() const {
      return (*wave_)[machine_];
    }
    const_iterator& operator++() {
      ++machine_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return machine_ == other.machine_;
    }
    bool operator!=(const const_iterator& other) const {
      return machine_ != other.machine_;
    }

   private:
    const WaveInboxes* wave_;
    std::size_t machine_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, machines()); }

 private:
  friend class Cluster;
  explicit WaveInboxes(ArenaLease lease) : lease_(std::move(lease)) {}

  ArenaLease lease_;
};

/// Per-wave inboxes of one batched engine call, in wave order. Each wave
/// owns its own arena block, so views into *any* wave stay valid as long
/// as the vector lives — receivers may hold inbox views across waves.
using BatchInboxes = std::vector<WaveInboxes>;

}  // namespace mpcstab
