#include "mpc/primitives.h"

#include <algorithm>
#include <cstddef>

#include "support/check.h"
#include "support/thread_pool.h"

namespace mpcstab {

namespace {

/// Fan-in for aggregation trees: at most S/2 children per parent so a parent
/// can receive all child messages within its space budget (each message is
/// payload + 1 header word).
std::uint64_t tree_fanin(const Cluster& cluster) {
  return std::max<std::uint64_t>(2, cluster.local_space() / 2);
}

}  // namespace

std::uint64_t reduce_to_root(Cluster& cluster,
                             std::vector<std::uint64_t> values,
                             const Combine& combine) {
  const std::uint64_t machines = cluster.machines();
  require(values.size() == machines, "one value per machine required");
  const std::uint64_t fanin = tree_fanin(cluster);
  const PoolScope pool_scope(cluster.pool());

  // Active machines hold partial aggregates; each level groups `fanin`
  // consecutive actives and ships their values to the group leader.
  std::vector<std::uint32_t> active(machines);
  for (std::uint32_t i = 0; i < machines; ++i) active[i] = i;

  while (active.size() > 1) {
    std::vector<std::vector<MpcMessage>> outboxes(machines);
    std::vector<std::uint32_t> next;
    for (std::size_t g = 0; g < active.size(); g += fanin) {
      const std::uint32_t leader = active[g];
      next.push_back(leader);
      for (std::size_t i = g + 1; i < std::min(active.size(), g + fanin);
           ++i) {
        outboxes[active[i]].push_back(
            MpcMessage{leader, {values[active[i]]}});
      }
    }
    auto inboxes = cluster.exchange(std::move(outboxes));
    // Leaders fold their inboxes independently (disjoint values slots);
    // within one leader the fold keeps the serial inbox order.
    parallel_for(next.size(), [&](std::size_t li) {
      const std::uint32_t leader = next[li];
      for (const MpcDelivery& msg : inboxes[leader]) {
        values[leader] = combine(values[leader], msg.payload[0]);
      }
    });
    active = std::move(next);
  }
  return values[active[0]];
}

std::vector<std::uint64_t> broadcast_from_root(Cluster& cluster,
                                               std::uint64_t value) {
  const std::uint64_t machines = cluster.machines();
  const std::uint64_t fanout = tree_fanin(cluster);
  const PoolScope pool_scope(cluster.pool());

  std::vector<std::uint64_t> values(machines, 0);
  values[0] = value;
  // uint8_t, not vector<bool>: machines update their flags from worker
  // threads, and vector<bool> packs bits (adjacent writes would race).
  std::vector<std::uint8_t> has(machines, 0);
  has[0] = 1;
  std::uint64_t covered = 1;

  while (covered < machines) {
    std::vector<std::vector<MpcMessage>> outboxes(machines);
    // Each holder pushes the value to the next `fanout` uncovered machines,
    // partitioned disjointly by holder rank.
    std::vector<std::uint32_t> holders, pending;
    for (std::uint32_t i = 0; i < machines; ++i) {
      (has[i] ? holders : pending).push_back(i);
    }
    std::size_t next_pending = 0;
    for (std::uint32_t h : holders) {
      for (std::uint64_t k = 0;
           k < fanout && next_pending < pending.size(); ++k) {
        outboxes[h].push_back(
            MpcMessage{pending[next_pending++], {values[h]}});
      }
      if (next_pending >= pending.size()) break;
    }
    auto inboxes = cluster.exchange(std::move(outboxes));
    std::vector<std::uint8_t> newly(machines, 0);
    parallel_for(machines, [&](std::size_t i) {
      for (const MpcDelivery& msg : inboxes[i]) {
        values[i] = msg.payload[0];
        if (!has[i]) {
          has[i] = 1;
          newly[i] = 1;
        }
      }
    });
    for (std::uint32_t i = 0; i < machines; ++i) covered += newly[i];
  }
  return values;
}

std::uint64_t allreduce(Cluster& cluster, std::vector<std::uint64_t> values,
                        const Combine& combine) {
  const std::uint64_t result =
      reduce_to_root(cluster, std::move(values), combine);
  broadcast_from_root(cluster, result);
  return result;
}

std::uint64_t allreduce_sum(Cluster& cluster,
                            std::vector<std::uint64_t> values) {
  return allreduce(cluster, std::move(values),
                   [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t allreduce_max(Cluster& cluster,
                            std::vector<std::uint64_t> values) {
  return allreduce(cluster, std::move(values),
                   [](std::uint64_t a, std::uint64_t b) {
                     return std::max(a, b);
                   });
}

std::uint64_t allreduce_argmin(Cluster& cluster,
                               std::vector<std::uint64_t> keys,
                               std::vector<std::uint64_t> payloads) {
  require(keys.size() == payloads.size() &&
              keys.size() == cluster.machines(),
          "one (key, payload) pair per machine required");
  // Pack (key, payload) into a comparable pair via two reduce passes over a
  // single combined value is lossy; instead reduce pairs encoded in two
  // words using a custom tree identical to reduce_to_root.
  const PoolScope pool_scope(cluster.pool());
  const std::uint64_t machines = cluster.machines();
  const std::uint64_t fanin =
      std::max<std::uint64_t>(2, cluster.local_space() / 3);

  std::vector<std::uint32_t> active(machines);
  for (std::uint32_t i = 0; i < machines; ++i) active[i] = i;

  while (active.size() > 1) {
    std::vector<std::vector<MpcMessage>> outboxes(machines);
    std::vector<std::uint32_t> next;
    for (std::size_t g = 0; g < active.size(); g += fanin) {
      const std::uint32_t leader = active[g];
      next.push_back(leader);
      for (std::size_t i = g + 1; i < std::min(active.size(), g + fanin);
           ++i) {
        outboxes[active[i]].push_back(MpcMessage{
            leader, {keys[active[i]], payloads[active[i]]}});
      }
    }
    auto inboxes = cluster.exchange(std::move(outboxes));
    parallel_for(next.size(), [&](std::size_t li) {
      const std::uint32_t leader = next[li];
      for (const MpcDelivery& msg : inboxes[leader]) {
        const std::uint64_t k = msg.payload[0];
        const std::uint64_t p = msg.payload[1];
        if (k < keys[leader] || (k == keys[leader] && p < payloads[leader])) {
          keys[leader] = k;
          payloads[leader] = p;
        }
      }
    });
    active = std::move(next);
  }
  const std::uint64_t winner = payloads[active[0]];
  broadcast_from_root(cluster, winner);
  return winner;
}

}  // namespace mpcstab
