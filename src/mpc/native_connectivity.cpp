#include "mpc/native_connectivity.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <string_view>

#include "mpc/pacing.h"
#include "mpc/primitives.h"
#include "native/components.h"
#include "rng/splitmix.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace mpcstab {

bool native_cross_check_enabled() {
  const char* flag = std::getenv("MPCSTAB_NATIVE_XCHECK");
  return flag != nullptr && *flag != '\0' && std::string_view(flag) != "0";
}

NativeConnectivityResult native_min_label_propagation(
    Cluster& cluster, const LegalGraph& g, std::uint64_t max_iterations) {
  const Graph& topo = g.graph();
  const Node n = topo.n();
  const std::uint64_t machines = cluster.machines();

  // Shard vertices with a degree-balanced placement (the one O(1)-round
  // input redistribution the model allows; pure hashing can overload a
  // machine's storage when S is tiny). Ties are broken by hashed name so
  // the placement stays name-driven.
  std::vector<std::uint32_t> owner(n);
  std::vector<std::vector<Node>> owned(machines);
  {
    std::vector<Node> order(n);
    for (Node v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](Node a, Node b) {
      const auto da = topo.degree(a), db = topo.degree(b);
      if (da != db) return da > db;
      return splitmix64(g.name(a)) < splitmix64(g.name(b));
    });
    std::vector<std::uint64_t> load(machines, 0);
    for (Node v : order) {
      const auto lightest = std::min_element(load.begin(), load.end());
      owner[v] = static_cast<std::uint32_t>(lightest - load.begin());
      owned[owner[v]].push_back(v);
      *lightest += 2 + topo.degree(v);
    }
    cluster.charge_rounds(1, "native input redistribution");
  }
  // Per-machine storage audit: adjacency + one label per owned vertex.
  for (std::uint32_t m = 0; m < machines; ++m) {
    std::uint64_t words = 0;
    for (Node v : owned[m]) words += 2 + topo.degree(v);
    cluster.check_local_space(words, "native shard storage");
  }

  NativeConnectivityResult result;
  result.labels.resize(n);
  for (Node v = 0; v < n; ++v) result.labels[v] = v;
  const PoolScope pool_scope(cluster.pool());
  const std::uint64_t start_rounds = cluster.rounds();
  const std::uint64_t start_words = cluster.words_moved();

  for (std::uint64_t it = 0; it < max_iterations; ++it) {
    // Each owned vertex pushes its label to every neighbor's owner.
    // Payload: (destination vertex, label). Same-machine pushes are free.
    // Machine m's work only writes outboxes[m] and next[u] for vertices u
    // it owns (owner[u] == m), so the per-machine loops run on the worker
    // pool and stay bit-identical to serial execution.
    std::vector<std::vector<MpcMessage>> outboxes(machines);
    std::vector<Node> next = result.labels;
    parallel_for(machines, [&](std::size_t m) {
      for (Node v : owned[m]) {
        for (Node u : topo.neighbors(v)) {
          if (owner[u] == m) {
            next[u] = std::min(next[u], result.labels[v]);
          } else {
            outboxes[m].push_back(
                MpcMessage{owner[u], {u, result.labels[v]}});
          }
        }
      }
    });
    const auto received = paced_exchange(cluster, std::move(outboxes));
    parallel_for(machines, [&](std::size_t m) {
      for (const MpcMessage& msg : received[m]) {
        const Node u = static_cast<Node>(msg.payload.at(0));
        const Node label = static_cast<Node>(msg.payload.at(1));
        ensure(owner[u] == m, "label push must land at the vertex owner");
        next[u] = std::min(next[u], label);
      }
    });

    // Convergence: a real OR-tree over per-machine change flags.
    std::vector<std::uint64_t> changed(machines, 0);
    parallel_for(machines, [&](std::size_t m) {
      for (Node v : owned[m]) {
        if (next[v] != result.labels[v]) changed[m] = 1;
      }
    });
    result.labels = std::move(next);
    ++result.iterations;
    if (allreduce_max(cluster, std::move(changed)) == 0) {
      result.converged = true;
      break;
    }
  }

  result.rounds = cluster.rounds() - start_rounds;
  result.words_moved = cluster.words_moved() - start_words;

  // Differential cross-check (MPCSTAB_NATIVE_XCHECK): a converged run's
  // labels are the canonical per-component minima, exactly what the
  // lock-free shared-memory backend produces — so compare them verbatim.
  // Off-model: the check charges no rounds or words.
  if (result.converged && native_cross_check_enabled()) {
    const native::NativeComponentsResult check = native::components_native(topo);
    ensure(check.labels == result.labels,
           "native cross-check: lock-free backend diverged from the "
           "propagation labels");
  }
  return result;
}

}  // namespace mpcstab
