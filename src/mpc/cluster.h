// The low-space MPC engine. Simulates M machines with S words of local
// space each, exchanging messages in synchronous rounds. The engine's sole
// job is to *enforce the resource model the paper's theorems are about*:
//   * every machine's send volume and receive volume per round is <= S words
//     (throws SpaceLimitError otherwise), and
//   * the number of rounds is counted exactly — rounds are the quantity all
//     of the paper's bounds are stated in.
//
// Higher-level primitives with textbook constant/O(1/phi)-round MPC
// implementations (sorting, aggregation trees) either move real words
// through `exchange` or charge their documented round cost explicitly via
// `charge_rounds`, keeping the accounting honest in both styles.
//
// Every exchange also records a per-round load profile (max/mean send and
// receive volume, words moved, skew), so benches can report how close each
// algorithm runs to the S-word wall, not just how many rounds it takes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mpc/arena.h"
#include "mpc/config.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace mpcstab {

/// One machine-to-machine message on the *send* side: senders own their
/// payload vectors while building outboxes. Delivery hands receivers
/// `MpcDelivery` span views into a per-wave arena (mpc/arena.h) instead of
/// these vectors — the engine moves the words, not the allocations.
struct MpcMessage {
  std::uint32_t dst = 0;
  std::vector<std::uint64_t> payload;
};

/// Load profile of one communication round (a real `exchange`; analytic
/// `charge_rounds` charges move no words and record no load).
struct RoundLoad {
  std::uint64_t round = 0;     ///< 1-based round index at which this fired.
  std::uint64_t words = 0;     ///< Total words moved this round.
  std::uint64_t max_send = 0;  ///< Largest per-machine send volume.
  std::uint64_t max_recv = 0;  ///< Largest per-machine receive volume.
  double mean_send = 0.0;      ///< Mean send volume over all M machines.
  double mean_recv = 0.0;      ///< Mean receive volume over all M machines.

  /// Receive-side skew: max over mean receive volume (1.0 = perfectly
  /// balanced; 0.0 for an empty round).
  double skew() const {
    return mean_recv > 0.0 ? static_cast<double>(max_recv) / mean_recv : 0.0;
  }
};

/// Synchronous-round MPC cluster with space and round accounting.
class Cluster {
 public:
  explicit Cluster(MpcConfig config);

  const MpcConfig& config() const { return config_; }
  std::uint64_t machines() const { return config_.machines; }
  std::uint64_t local_space() const { return config_.local_space; }

  /// Rounds consumed so far.
  std::uint64_t rounds() const { return rounds_; }

  /// Total words moved through `exchange` so far.
  std::uint64_t words_moved() const { return words_moved_; }

  /// Performs one communication round: `outboxes[i]` are the messages sent
  /// by machine i. Validates that each machine sends <= S words and
  /// receives <= S words, then returns the per-machine inboxes as span
  /// views into one contiguous per-wave arena buffer (see mpc/arena.h for
  /// the ownership/lifetime contract — views live as long as the returned
  /// WaveInboxes). Counts one round — unless every outbox is empty: an
  /// all-empty wave moves zero words, and since every sender knows its own
  /// queue is empty no coordination round is needed, so it is not counted
  /// (callers should simply not enqueue such waves; see the wave loops in
  /// shuffle/pacing). Per-machine validation runs on the worker pool;
  /// delivery order is fixed machine order (senders ascending, each
  /// sender's messages FIFO), identical to serial execution.
  WaveInboxes exchange(std::vector<std::vector<MpcMessage>> outboxes);

  /// Performs `waves.size()` communication rounds in one host-side pass:
  /// wave w is exactly the round `exchange(waves[w])` would have run, and
  /// the result is the per-wave inboxes in wave order. The paper-model
  /// accounting is bit-identical to calling `exchange` sequentially —
  /// every non-empty wave counts one round, records its own load profile
  /// and space violations surface at the same wave with earlier waves
  /// fully accounted — only the host-side cost (pool dispatches,
  /// allocations) is paid per batch instead of per round. Each wave routes
  /// into its own arena block, so views into any wave stay valid while the
  /// returned vector lives — receivers may hold inbox views across waves.
  /// Wave contents must not depend on earlier waves' deliveries; see
  /// mpc/batching.h for the scheduling layer that guarantees this.
  BatchInboxes exchange_batch(
      std::vector<std::vector<std::vector<MpcMessage>>> waves);

  /// Charges `k` rounds for a primitive whose data movement is modeled
  /// analytically (cost model documented at the call site). `what` labels
  /// the charge in the round log.
  void charge_rounds(std::uint64_t k, std::string_view what);

  /// Asserts a per-machine storage amount fits in local space.
  void check_local_space(std::uint64_t words, std::string_view what) const;

  /// Round-cost of a fan-in-S aggregation/broadcast tree over M machines:
  /// ceil(log_S(M)) for M >= 2. A single machine aggregates locally and
  /// costs 0 rounds — no communication happens.
  std::uint64_t tree_rounds() const;

  /// Human-readable log of round charges (for diagnostics and tests).
  const std::vector<std::string>& round_log() const { return round_log_; }

  /// Per-exchange load profile, one entry per real communication round.
  const std::vector<RoundLoad>& round_loads() const { return round_loads_; }

  /// Largest per-machine receive volume seen in any single round (<= S for
  /// every run that did not throw).
  std::uint64_t max_receive_load() const;

  /// Largest receive-side skew (max/mean) seen in any single round.
  double peak_skew() const;

  /// Enables structured tracing: allocates the cluster's tracer (idempotent)
  /// and returns it. `exchange`/`charge_rounds` record events into it from
  /// then on; algorithms open phase spans via `span()`. Disabled clusters
  /// pay one null check per round — nothing more.
  obs::Tracer& enable_tracing();

  /// The active tracer, or nullptr when tracing is disabled (the default).
  obs::Tracer* trace() const { return tracer_.get(); }

  /// Opens a phase span on the tracer; inert when tracing is disabled, so
  /// call sites need no branches:
  ///   obs::Span phase = cluster.span("hash-to-min");
  obs::Span span(std::string_view name) {
    return obs::Span(tracer_.get(), name);
  }

  /// Binds a job-scoped worker pool: the cluster's own parallel loops
  /// (exchange validation/merge, batched waves) dispatch to it, and
  /// algorithms can scope their per-cluster loops onto it via `pool()`.
  /// Unset (the default), loops resolve the calling thread's PoolScope or
  /// the shared default pool — single-job callers need no handle.
  void set_pool(PoolHandle pool) { pool_ = std::move(pool); }

  /// The bound job pool, or nullptr when none was set.
  Pool* pool() const { return pool_.get(); }

 private:
  /// Accounts one completed round (words, load profile, tracer, metrics)
  /// from the per-machine send/receive volumes, then enforces the S-word
  /// limits. Shared by exchange and exchange_batch so their accounting can
  /// never diverge. A zero-word round (possible only when no message was
  /// sent at all — every message carries a header word) is a no-op: it is
  /// not counted, logged or profiled.
  void account_round(const std::vector<std::uint64_t>& sent,
                     const std::vector<std::uint64_t>& received);

  /// Routes one validated wave into a leased arena block through the
  /// active Transport (mpc/transport.h): the backend fills the block with
  /// the canonical radix layout — grouped by destination, senders
  /// ascending, FIFO per sender — and `received` with per-machine receive
  /// volumes. With the arena disabled (MPCSTAB_NO_ARENA) payloads land in
  /// per-message legacy storage instead; delivery order and accounting
  /// are identical either way, whichever backend routes. `wave_index` is
  /// the wave's position in the caller's batch (0 for a lone exchange),
  /// threaded through for transport error context only.
  WaveInboxes route_wave(std::vector<std::vector<MpcMessage>>& outboxes,
                         std::vector<std::uint64_t>& received,
                         std::uint64_t wave_index);

  MpcConfig config_;
  std::shared_ptr<ArenaPool> arena_ = std::make_shared<ArenaPool>();
  PoolHandle pool_;  ///< null = resolve via PoolScope / default pool
  std::uint64_t rounds_ = 0;
  std::uint64_t words_moved_ = 0;
  std::vector<std::string> round_log_;
  std::vector<RoundLoad> round_loads_;
  std::unique_ptr<obs::Tracer> tracer_;  // null = tracing disabled
};

}  // namespace mpcstab
