// The low-space MPC engine. Simulates M machines with S words of local
// space each, exchanging messages in synchronous rounds. The engine's sole
// job is to *enforce the resource model the paper's theorems are about*:
//   * every machine's send volume and receive volume per round is <= S words
//     (throws SpaceLimitError otherwise), and
//   * the number of rounds is counted exactly — rounds are the quantity all
//     of the paper's bounds are stated in.
//
// Higher-level primitives with textbook constant/O(1/phi)-round MPC
// implementations (sorting, aggregation trees) either move real words
// through `exchange` or charge their documented round cost explicitly via
// `charge_rounds`, keeping the accounting honest in both styles.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpc/config.h"

namespace mpcstab {

/// One machine-to-machine message.
struct MpcMessage {
  std::uint32_t dst = 0;
  std::vector<std::uint64_t> payload;
};

/// Synchronous-round MPC cluster with space and round accounting.
class Cluster {
 public:
  explicit Cluster(MpcConfig config);

  const MpcConfig& config() const { return config_; }
  std::uint64_t machines() const { return config_.machines; }
  std::uint64_t local_space() const { return config_.local_space; }

  /// Rounds consumed so far.
  std::uint64_t rounds() const { return rounds_; }

  /// Total words moved through `exchange` so far.
  std::uint64_t words_moved() const { return words_moved_; }

  /// Performs one communication round: `outboxes[i]` are the messages sent
  /// by machine i. Validates that each machine sends <= S words and
  /// receives <= S words, then returns the per-machine inboxes. Counts one
  /// round.
  std::vector<std::vector<MpcMessage>> exchange(
      std::vector<std::vector<MpcMessage>> outboxes);

  /// Charges `k` rounds for a primitive whose data movement is modeled
  /// analytically (cost model documented at the call site). `what` labels
  /// the charge in the round log.
  void charge_rounds(std::uint64_t k, std::string_view what);

  /// Asserts a per-machine storage amount fits in local space.
  void check_local_space(std::uint64_t words, std::string_view what) const;

  /// Round-cost of a fan-in-S aggregation/broadcast tree over M machines:
  /// ceil(log_S(M)), at least 1. This is the O(1/phi) = O(1) factor the
  /// paper treats as constant.
  std::uint64_t tree_rounds() const;

  /// Human-readable log of round charges (for diagnostics and tests).
  const std::vector<std::string>& round_log() const { return round_log_; }

 private:
  MpcConfig config_;
  std::uint64_t rounds_ = 0;
  std::uint64_t words_moved_ = 0;
  std::vector<std::string> round_log_;
};

}  // namespace mpcstab
