// Constant-round MPC communication primitives built on Cluster::exchange.
// These are the building blocks every low-space MPC paper assumes:
// aggregation trees with fan-in S give O(log_S M) = O(1/phi) = O(1)-round
// allreduce and broadcast (e.g. "an MPC algorithm can easily determine n in
// O(1) rounds, by simply summing counts of the number of nodes held on each
// machine", Section 2.1).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mpc/cluster.h"

namespace mpcstab {

/// Associative combine on 64-bit words.
using Combine = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

/// Reduces one value per machine to a single result at machine 0 using a
/// fan-in-S tree, moving real messages through the cluster; returns the
/// result. Rounds consumed: tree depth.
std::uint64_t reduce_to_root(Cluster& cluster,
                             std::vector<std::uint64_t> values,
                             const Combine& combine);

/// Broadcasts `value` from machine 0 to all machines via a fan-out-S tree;
/// returns the per-machine received values (all equal). Rounds: tree depth.
std::vector<std::uint64_t> broadcast_from_root(Cluster& cluster,
                                               std::uint64_t value);

/// reduce + broadcast: every machine learns the combined value.
std::uint64_t allreduce(Cluster& cluster, std::vector<std::uint64_t> values,
                        const Combine& combine);

/// Sum over machines.
std::uint64_t allreduce_sum(Cluster& cluster,
                            std::vector<std::uint64_t> values);

/// Max over machines.
std::uint64_t allreduce_max(Cluster& cluster,
                            std::vector<std::uint64_t> values);

/// Argmin over (key, payload) pairs, one pair per machine: returns the
/// payload attaining the smallest key (ties to smallest payload).
/// Used for globally agreeing on a seed / repetition index — the
/// quintessential component-UNSTABLE operation (Section 5).
std::uint64_t allreduce_argmin(Cluster& cluster,
                               std::vector<std::uint64_t> keys,
                               std::vector<std::uint64_t> payloads);

}  // namespace mpcstab
