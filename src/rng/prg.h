// Pseudorandom generator substitute for the paper's non-explicit PRG
// (Proposition 34 / Lemma 35).
//
// The paper proves the *existence* of an (m, eps)-PRG with seed length
// d = Theta(log m + log 1/eps) and computes it by exhaustive search over all
// functions {0,1}^d -> {0,1}^m and all size-m circuits — exp(poly(m)) time.
// That search is physically infeasible for any m of interest, and the paper
// itself labels the resulting algorithms non-uniform/non-explicit.
//
// SUBSTITUTION (recorded in DESIGN.md): we provide a generator with the same
// interface — d-bit seed in, m-bit pseudorandom string out — implemented as a
// counter-mode PRF chain. Its role in the reproduction is identical: feed
// short-seed pseudorandom bits to simulated LOCAL algorithms so the method of
// conditional expectations can enumerate all 2^d seeds (Theorem 45). The
// tests subject it to a battery of cheap statistical distinguishers standing
// in for the "all small circuits" quantifier.
#pragma once

#include <cstdint>
#include <vector>

namespace mpcstab {

/// Expands a d-bit seed to m pseudorandom bits.
class Prg {
 public:
  /// `seed_bits` = d (<= 32 so the seed space is enumerable, as in the
  /// paper's Theta(log n)-bit seeds); `output_bits` = m.
  Prg(unsigned seed_bits, std::uint64_t output_bits);

  unsigned seed_bits() const { return seed_bits_; }
  std::uint64_t output_bits() const { return output_bits_; }

  /// Number of distinct seeds, 2^d.
  std::uint64_t seed_count() const { return 1ull << seed_bits_; }

  /// The i-th output bit under `seed`; i in [0, output_bits).
  bool bit(std::uint64_t seed, std::uint64_t i) const;

  /// The i-th output *word* (64 bits packed) under `seed`.
  std::uint64_t word(std::uint64_t seed, std::uint64_t i) const;

  /// Materializes the full m-bit output as packed words.
  std::vector<std::uint64_t> expand(std::uint64_t seed) const;

 private:
  unsigned seed_bits_;
  std::uint64_t output_bits_;
};

/// Result of running the distinguisher battery against a PRG.
struct DistinguisherReport {
  /// Largest |Pr[T(PRG)] - Pr[T(U)]| over the battery.
  double max_advantage = 0.0;
  /// Name of the most successful distinguisher.
  const char* worst = "";
};

/// Runs a battery of statistical distinguishers (bit balance, serial
/// correlation, block frequency, parity of strided subsequences) comparing
/// the PRG's output ensemble against true (PRF-derived) randomness.
/// `reference_seed` keys the uniform reference ensemble.
DistinguisherReport run_distinguishers(const Prg& prg,
                                       std::uint64_t reference_seed);

}  // namespace mpcstab
