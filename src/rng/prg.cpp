#include "rng/prg.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "rng/prf.h"
#include "support/check.h"

namespace mpcstab {

Prg::Prg(unsigned seed_bits, std::uint64_t output_bits)
    : seed_bits_(seed_bits), output_bits_(output_bits) {
  require(seed_bits >= 1 && seed_bits <= 32,
          "PRG seed must be 1..32 bits (enumerable, as in the paper)");
  require(output_bits >= 1, "PRG output must be non-empty");
}

std::uint64_t Prg::word(std::uint64_t seed, std::uint64_t i) const {
  require(seed < seed_count(), "seed out of range");
  // Domain-separated two-level mix; the seed is stretched through a fixed
  // key so nearby seeds diverge immediately.
  const Prf prf(splitmix64(seed * 0x2545f4914f6cdd1dull + 0x9e37ull));
  return prf.word(/*stream=*/0x5052472d63686e6bull, i);
}

bool Prg::bit(std::uint64_t seed, std::uint64_t i) const {
  require(i < output_bits_, "bit index out of range");
  return ((word(seed, i >> 6) >> (i & 63u)) & 1u) != 0;
}

std::vector<std::uint64_t> Prg::expand(std::uint64_t seed) const {
  const std::uint64_t words = (output_bits_ + 63) / 64;
  std::vector<std::uint64_t> out(words);
  for (std::uint64_t i = 0; i < words; ++i) out[i] = word(seed, i);
  // Mask tail bits beyond output_bits_ so equality comparisons are exact.
  const unsigned tail = static_cast<unsigned>(output_bits_ & 63u);
  if (tail != 0) out.back() &= (1ull << tail) - 1;
  return out;
}

namespace {

// Each distinguisher maps an m-bit string to a statistic in [0,1]; its
// "decision" is statistic > threshold. Advantage is estimated over the
// whole (enumerable) seed space vs a uniform reference ensemble.
struct Statistic {
  const char* name;
  double (*eval)(const std::vector<std::uint64_t>& bits, std::uint64_t nbits);
};

double stat_balance(const std::vector<std::uint64_t>& w, std::uint64_t n) {
  std::uint64_t ones = 0;
  for (std::uint64_t x : w) ones += static_cast<std::uint64_t>(__builtin_popcountll(x));
  return static_cast<double>(ones) / static_cast<double>(n);
}

double stat_serial(const std::vector<std::uint64_t>& w, std::uint64_t n) {
  // Fraction of adjacent equal bit pairs.
  std::uint64_t equal = 0;
  bool prev = (w[0] & 1u) != 0;
  for (std::uint64_t i = 1; i < n; ++i) {
    bool cur = ((w[i >> 6] >> (i & 63u)) & 1u) != 0;
    equal += (cur == prev) ? 1u : 0u;
    prev = cur;
  }
  return n > 1 ? static_cast<double>(equal) / static_cast<double>(n - 1) : 0.5;
}

double stat_block(const std::vector<std::uint64_t>& w, std::uint64_t n) {
  // Max deviation of 64-bit block popcounts from 32.
  double worst = 0;
  const std::uint64_t blocks = n / 64;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    double dev = std::abs(__builtin_popcountll(w[b]) - 32.0) / 32.0;
    worst = std::max(worst, dev);
  }
  return blocks > 0 ? worst : 0.0;
}

double stat_stride3(const std::vector<std::uint64_t>& w, std::uint64_t n) {
  // Balance of every third bit (catches short linear structure).
  std::uint64_t ones = 0, count = 0;
  for (std::uint64_t i = 0; i < n; i += 3) {
    ones += (w[i >> 6] >> (i & 63u)) & 1u;
    ++count;
  }
  return count > 0 ? static_cast<double>(ones) / static_cast<double>(count)
                   : 0.5;
}

double stat_runs(const std::vector<std::uint64_t>& w, std::uint64_t n) {
  // Normalized number of runs (maximal constant stretches); uniform bits
  // give ~ n/2 runs.
  if (n < 2) return 0.5;
  std::uint64_t runs = 1;
  bool prev = (w[0] & 1u) != 0;
  for (std::uint64_t i = 1; i < n; ++i) {
    const bool cur = ((w[i >> 6] >> (i & 63u)) & 1u) != 0;
    if (cur != prev) ++runs;
    prev = cur;
  }
  return static_cast<double>(runs) / static_cast<double>(n);
}

double stat_autocorr16(const std::vector<std::uint64_t>& w, std::uint64_t n) {
  // Agreement rate between the stream and its 16-bit shift (catches short
  // periods); uniform gives 1/2.
  if (n <= 16) return 0.5;
  std::uint64_t agree = 0;
  for (std::uint64_t i = 16; i < n; ++i) {
    const bool a = ((w[i >> 6] >> (i & 63u)) & 1u) != 0;
    const bool b = ((w[(i - 16) >> 6] >> ((i - 16) & 63u)) & 1u) != 0;
    agree += (a == b) ? 1u : 0u;
  }
  return static_cast<double>(agree) / static_cast<double>(n - 16);
}

double stat_byte_chi(const std::vector<std::uint64_t>& w, std::uint64_t n) {
  // Chi-square-ish statistic on byte histogram, scaled to ~[0,1].
  const std::uint64_t bytes = n / 8;
  if (bytes < 64) return 0.0;
  std::array<std::uint64_t, 256> hist{};
  for (std::uint64_t i = 0; i < bytes; ++i) {
    hist[(w[i / 8] >> (8 * (i % 8))) & 0xffu]++;
  }
  const double expect = static_cast<double>(bytes) / 256.0;
  double chi = 0;
  for (std::uint64_t h : hist) {
    const double d = static_cast<double>(h) - expect;
    chi += d * d / expect;
  }
  return chi / 1024.0;  // ~0.25 for uniform (E[chi2_255] = 255)
}

constexpr std::array<Statistic, 7> kBattery = {{
    {"bit-balance", stat_balance},
    {"serial-correlation", stat_serial},
    {"block-frequency", stat_block},
    {"stride-3-balance", stat_stride3},
    {"runs", stat_runs},
    {"autocorrelation-16", stat_autocorr16},
    {"byte-chi-square", stat_byte_chi},
}};

}  // namespace

DistinguisherReport run_distinguishers(const Prg& prg,
                                       std::uint64_t reference_seed) {
  const std::uint64_t seeds = std::min<std::uint64_t>(prg.seed_count(), 4096);
  const std::uint64_t n = prg.output_bits();
  const Prf ref(reference_seed);

  DistinguisherReport report;
  for (const auto& stat : kBattery) {
    double prg_mean = 0, ref_mean = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      prg_mean += stat.eval(prg.expand(s), n);
      // Uniform reference string of the same length.
      std::vector<std::uint64_t> u((n + 63) / 64);
      for (std::uint64_t i = 0; i < u.size(); ++i) u[i] = ref.word(s, i);
      const unsigned tail = static_cast<unsigned>(n & 63u);
      if (tail != 0) u.back() &= (1ull << tail) - 1;
      ref_mean += stat.eval(u, n);
    }
    prg_mean /= static_cast<double>(seeds);
    ref_mean /= static_cast<double>(seeds);
    const double adv = std::abs(prg_mean - ref_mean);
    if (adv > report.max_advantage) {
      report.max_advantage = adv;
      report.worst = stat.name;
    }
  }
  return report;
}

}  // namespace mpcstab
