// k-wise independent hash families (Section 4.1.1 of the paper).
//
// The family is the classical degree-(k-1) polynomial over the Mersenne
// prime field GF(2^61 - 1): for uniformly random coefficients, the values
// h(x_1),...,h(x_k) at any k distinct points are exactly uniform and
// independent over the field. Reducing a field element to a smaller range
// (a bit, or [0,1)) introduces statistical error < k / 2^61 — the "strongly
// (eps,k)-wise independent" relaxation of Definition 30 with eps
// astronomically below any failure probability we care about, exactly the
// regime the paper requires ("we will choose eps = n^-c ... and can then
// assume these outputs are fully independent").
//
// A family member is specified by a short seed: k field coefficients derived
// from `seed_bits` explicit bits, so the method of conditional expectations
// can enumerate the family (see derand/seed_select.h).
#pragma once

#include <cstdint>
#include <vector>

namespace mpcstab {

/// The Mersenne prime 2^61 - 1 used as the hash field.
inline constexpr std::uint64_t kHashPrime = (1ull << 61) - 1;

/// One member of a k-wise independent family: a degree-(k-1) polynomial
/// over GF(2^61-1) with explicitly stored coefficients.
class KWiseHash {
 public:
  /// Constructs the family member with the given coefficients (each taken
  /// mod 2^61-1). `coefficients.size()` is the independence parameter k.
  explicit KWiseHash(std::vector<std::uint64_t> coefficients);

  /// Constructs the member indexed by `seed` in a seed space of
  /// `seed_bits` total bits, split evenly across k coefficients. This is
  /// the enumerable small family used by derandomization: it is a
  /// (subsampled) subset of the full family, still k-wise "spread" enough
  /// for the method of conditional expectations, which never relies on the
  /// family's independence — only on exhaustively checking the cost of each
  /// member (the paper's machines do exactly this).
  static KWiseHash from_seed(unsigned k, std::uint64_t seed,
                             unsigned seed_bits);

  /// Independence parameter k of this member's family.
  unsigned k() const { return static_cast<unsigned>(coeff_.size()); }

  /// Field value of the polynomial at point x (mapped into the field).
  std::uint64_t eval(std::uint64_t x) const;

  /// Value reduced to [0, bound); (eps,k)-wise independent for
  /// eps = k * bound / 2^61.
  std::uint64_t eval_below(std::uint64_t x, std::uint64_t bound) const;

  /// Value reduced to [0,1).
  double eval_unit(std::uint64_t x) const;

  /// One (eps,k)-wise independent pseudorandom bit.
  bool eval_bit(std::uint64_t x) const;

 private:
  std::vector<std::uint64_t> coeff_;
};

/// Fast dedicated pairwise-independent (k=2) hash h(x) = a*x + b over
/// GF(2^61-1), the family behind Claim 52's pairwise Luby step.
class PairwiseHash {
 public:
  PairwiseHash(std::uint64_t a, std::uint64_t b);

  static PairwiseHash from_seed(std::uint64_t seed, unsigned seed_bits);

  std::uint64_t eval(std::uint64_t x) const;
  double eval_unit(std::uint64_t x) const;

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

}  // namespace mpcstab
