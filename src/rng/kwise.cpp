#include "rng/kwise.h"

#include "rng/splitmix.h"
#include "support/check.h"
#include "support/math.h"

namespace mpcstab {

namespace {

// Reduction mod the Mersenne prime 2^61-1 using its special form.
std::uint64_t mersenne_reduce(unsigned __int128 x) {
  std::uint64_t lo = static_cast<std::uint64_t>(x & kHashPrime);
  std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kHashPrime) r -= kHashPrime;
  return r;
}

std::uint64_t field(std::uint64_t x) {
  return mersenne_reduce(static_cast<unsigned __int128>(x));
}

}  // namespace

KWiseHash::KWiseHash(std::vector<std::uint64_t> coefficients)
    : coeff_(std::move(coefficients)) {
  require(!coeff_.empty(), "k-wise hash needs k >= 1 coefficients");
  for (auto& c : coeff_) c = field(c);
}

KWiseHash KWiseHash::from_seed(unsigned k, std::uint64_t seed,
                               unsigned seed_bits) {
  require(k >= 1, "k must be >= 1");
  require(seed_bits >= k && seed_bits <= 64,
          "seed_bits must be in [k, 64]");
  // Expand the short seed into k full-width coefficients with a fixed
  // bijective mixer, so distinct seeds give distinct members and the map is
  // deterministic. Conditional-expectation users enumerate all 2^seed_bits
  // members; independence of the *full* family is inherited in distribution
  // when seed_bits is large enough, and is never assumed by the selector.
  std::vector<std::uint64_t> coeff(k);
  std::uint64_t masked = seed_bits == 64 ? seed
                                         : (seed & ((1ull << seed_bits) - 1));
  for (unsigned i = 0; i < k; ++i) {
    coeff[i] = field(splitmix64(masked + 0x1000003ull * (i + 1)));
  }
  return KWiseHash(std::move(coeff));
}

std::uint64_t KWiseHash::eval(std::uint64_t x) const {
  // Horner evaluation of sum coeff_[i] * x^i.
  std::uint64_t point = field(x);
  std::uint64_t acc = 0;
  for (auto it = coeff_.rbegin(); it != coeff_.rend(); ++it) {
    acc = mersenne_reduce(
        static_cast<unsigned __int128>(acc) * point + *it);
  }
  return acc;
}

std::uint64_t KWiseHash::eval_below(std::uint64_t x,
                                    std::uint64_t bound) const {
  require(bound >= 1, "bound must be >= 1");
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(eval(x)) * bound) / (kHashPrime));
}

double KWiseHash::eval_unit(std::uint64_t x) const {
  return static_cast<double>(eval(x)) / static_cast<double>(kHashPrime);
}

bool KWiseHash::eval_bit(std::uint64_t x) const { return (eval(x) & 1u) != 0; }

PairwiseHash::PairwiseHash(std::uint64_t a, std::uint64_t b)
    : a_(field(a)), b_(field(b)) {}

PairwiseHash PairwiseHash::from_seed(std::uint64_t seed, unsigned seed_bits) {
  require(seed_bits >= 2 && seed_bits <= 64, "seed_bits must be in [2, 64]");
  std::uint64_t masked = seed_bits == 64 ? seed
                                         : (seed & ((1ull << seed_bits) - 1));
  return PairwiseHash(splitmix64(masked ^ 0xa5a5a5a5a5a5a5a5ull),
                      splitmix64(masked + 0x0123456789abcdefull));
}

std::uint64_t PairwiseHash::eval(std::uint64_t x) const {
  return mersenne_reduce(
      static_cast<unsigned __int128>(a_) * field(x) + b_);
}

double PairwiseHash::eval_unit(std::uint64_t x) const {
  return static_cast<double>(eval(x)) / static_cast<double>(kHashPrime);
}

}  // namespace mpcstab
