// Deterministic seeded generators. All randomness in the library flows from
// explicit 64-bit seeds so every experiment is reproducible bit-for-bit,
// matching the paper's model of a single shared random seed S distributed to
// all machines (Section 2.4.2).
#pragma once

#include <cstdint>

namespace mpcstab {

/// SplitMix64 mixing function: a high-quality 64-bit bijective mixer.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Sequential PRNG built on splitmix64; cheap, seedable, never shared
/// between logical streams (use Prf for stream separation).
class SplitMix {
 public:
  explicit constexpr SplitMix(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() { return splitmix64(state_++); }

  /// Uniform value in [0, bound) for bound >= 1 (Lemire reduction bias is
  /// negligible at 64 bits; acceptable for simulation workloads).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mpcstab
