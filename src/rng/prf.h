// Counter-based pseudorandom function: the library's model of *shared
// randomness*. Each node/machine derives its random bits as
// Prf(seed)(stream, counter), so (a) all parties with the same seed see the
// same randomness (the paper's shared seed S), and (b) logically distinct
// uses never collide. This mirrors how the paper's algorithms "use part of
// the random seed assigned to the simulation".
#pragma once

#include <cstdint>

#include "rng/splitmix.h"

namespace mpcstab {

/// Stateless keyed PRF over (stream, counter) pairs.
class Prf {
 public:
  explicit constexpr Prf(std::uint64_t seed) : seed_(seed) {}

  constexpr std::uint64_t seed() const { return seed_; }

  /// 64 pseudorandom bits for logical stream `stream` at index `counter`.
  constexpr std::uint64_t word(std::uint64_t stream,
                               std::uint64_t counter) const {
    // Two rounds of splitmix64 over a mixed tuple; passes the library's
    // distinguisher battery (see tests/rng_test.cpp).
    std::uint64_t x = splitmix64(seed_ ^ splitmix64(stream));
    return splitmix64(x ^ (0x9e3779b97f4a7c15ull * counter + 0x7f4a7c15ull));
  }

  /// Uniform value in [0, bound).
  constexpr std::uint64_t word_below(std::uint64_t stream,
                                     std::uint64_t counter,
                                     std::uint64_t bound) const {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(word(stream, counter)) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double unit(std::uint64_t stream, std::uint64_t counter) const {
    return static_cast<double>(word(stream, counter) >> 11) * 0x1.0p-53;
  }

  /// One fair pseudorandom bit.
  constexpr bool bit(std::uint64_t stream, std::uint64_t counter) const {
    return (word(stream, counter) & 1u) != 0;
  }

  /// Derives an independent sub-PRF for a nested scope (e.g. one of the
  /// Theta(log n) parallel repetitions of an amplified algorithm).
  constexpr Prf derive(std::uint64_t scope) const {
    return Prf(splitmix64(seed_ ^ (scope * 0xd1342543de82ef95ull + 1)));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace mpcstab
