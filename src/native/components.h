// The *speed tier*: a second connectivity/components backend that answers
// on shared memory as fast as the hardware allows, with no MPC round/word
// accounting at all. Where mpc/native_connectivity.h pays for every label
// movement through Cluster::exchange (the cost-model ground truth), this
// backend is the raw-performance ground truth: lock-free Shiloach–Vishkin
// over an atomic parent array (CAS hook-to-min linking, path-compression
// passes on the job worker pool) with an Afforest-style first phase
// (k-neighbor sampling, most-common-component detection, and a final sweep
// that skips the sampled giant component).
//
// The two tiers verify each other: tools/oracle_check runs both over every
// generator family and fails on any label-partition mismatch, so the fast
// path doubles as a standing correctness oracle for the accounted engine
// (see DESIGN.md "Backend tiers").
//
// Determinism contract: the returned labels are canonical — labels[v] is
// the smallest node index in v's component, regardless of thread count or
// CAS interleaving (links only ever redirect a root at a larger index
// toward a smaller label, so the component minimum is the unique surviving
// root). Effort metrics (CAS retries, the sampled skip fraction) ARE
// schedule-dependent; they report how hard the backend worked, never what
// it answered.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcstab::native {

/// Tuning knobs; the defaults mirror GAP/Afforest and are safe for every
/// graph (each phase is a pure optimization — correctness never depends on
/// the sample hitting the actual giant component).
struct NativeOptions {
  /// Afforest phase 1: how many of each vertex's first neighbors are linked
  /// before sampling. 0 skips straight to the full sweep (pure
  /// Shiloach–Vishkin).
  std::uint32_t neighbor_rounds = 2;
  /// Vertices sampled to guess the most common component; clamped to n.
  std::uint32_t sample_count = 1024;
  /// Seed for the deterministic sample-index sequence (the *indices* are
  /// deterministic; the labels they observe depend on phase-1 races).
  std::uint64_t sample_seed = 1;
  /// When false, the final sweep links every vertex (no giant-component
  /// skipping) — the A/B ablation the tests pin against the default path.
  bool skip_giant = true;
};

/// Outcome of one lock-free components run.
struct NativeComponentsResult {
  /// Canonical min-label ids: labels[v] is the smallest node index in v's
  /// component. Bit-identical across runs and thread counts.
  std::vector<Node> labels;
  std::uint32_t count = 0;  ///< number of connected components
  /// Effort metrics (schedule-dependent; also exported through the obs
  /// registry as native.cas_retries / native.compress_passes /
  /// native.sampled_skip_frac — see components_native()).
  std::uint64_t cas_retries = 0;     ///< lost CAS races during linking
  std::uint64_t compress_passes = 0; ///< full path-compression sweeps
  /// Fraction of vertices the final sweep skipped as members of the sampled
  /// most-common component (0 when skip_giant is off or sampling was not
  /// worthwhile).
  double sampled_skip_frac = 0.0;
};

/// Runs lock-free Shiloach–Vishkin + Afforest over `g` on the calling
/// thread's current worker pool (PoolScope; the shared default pool for
/// scope-less callers). No cluster, no accounting: wall time is the only
/// cost. Attributes per-job metrics through the overlay registry when one
/// is bound (obs::RegistryScope): `native.cas_retries` and
/// `native.compress_passes` counters plus the `native.sampled_skip_frac`
/// gauge (parts per million, so the fraction survives the registry's
/// integer instruments).
NativeComponentsResult components_native(const Graph& g,
                                         const NativeOptions& opts = {});

}  // namespace mpcstab::native
