#include "native/oracle.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <ostream>
#include <sstream>

#include "algorithms/connectivity.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/legal_graph.h"
#include "mpc/cluster.h"
#include "mpc/config.h"
#include "mpc/native_connectivity.h"
#include "native/components.h"
#include "rng/prf.h"
#include "support/math.h"

namespace mpcstab::native {

namespace {

/// First-occurrence canonical renaming of a labeling. Label values are
/// arbitrary (same_partition's contract) — a map, not a vector keyed by
/// label, so values >= n stay in bounds.
std::vector<Node> renamed(const std::vector<Node>& labels) {
  std::map<Node, Node> name;  // label value -> canonical id
  std::vector<Node> out(labels.size());
  Node next = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const auto [slot, fresh] = name.emplace(labels[v], next);
    if (fresh) ++next;
    out[v] = slot->second;
  }
  return out;
}

struct CaseBuilder {
  std::uint32_t seeds;
  std::vector<OracleCase> cases;

  void add(std::string family, std::string params, bool engine, double phi,
           std::function<Graph()> build) {
    OracleCase c;
    c.name = params.empty() ? family : family + ":" + params;
    c.family = std::move(family);
    c.engine = engine;
    c.phi = phi;
    c.build = std::move(build);
    cases.push_back(std::move(c));
  }

  /// Random families: one cell per seed in [1, seeds].
  void add_seeded(std::string family, std::string params, bool engine,
                  double phi,
                  std::function<Graph(std::uint64_t)> build) {
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      OracleCase c;
      c.name = family + ":" + params + ",seed=" + std::to_string(s);
      c.family = family;
      c.seed = s;
      c.engine = engine;
      c.phi = phi;
      c.build = [build, s] { return build(s); };
      cases.push_back(std::move(c));
    }
  }
};

/// Checks one backend's labeling against the canonical one; appends a
/// failure line on mismatch. `exact` additionally requires canonical
/// min-label values (the lock-free backend's contract), not just the same
/// partition.
void check_labels(const OracleCase& c, const std::string& backend,
                  const std::vector<Node>& got,
                  const std::vector<Node>& canon, bool exact,
                  OracleReport& report, std::uint32_t seeds) {
  std::string why;
  if (got.size() != canon.size()) {
    why = "label vector size " + std::to_string(got.size()) + " != n " +
          std::to_string(canon.size());
  } else if (!same_partition(got, canon)) {
    const std::vector<Node> a = renamed(got);
    const std::vector<Node> b = renamed(canon);
    for (Node v = 0; v < static_cast<Node>(a.size()); ++v) {
      if (a[v] != b[v]) {
        why = "partition diverges at node " + std::to_string(v);
        break;
      }
    }
  } else if (exact && got != canon) {
    for (Node v = 0; v < static_cast<Node>(got.size()); ++v) {
      if (got[v] != canon[v]) {
        why = "label not canonical at node " + std::to_string(v) + ": got " +
              std::to_string(got[v]) + ", component minimum is " +
              std::to_string(canon[v]);
        break;
      }
    }
  }
  if (why.empty()) return;
  report.ok = false;
  report.failures.push_back(c.name + " [" + backend + "]: " + why);
  report.repros.push_back("tools/oracle_check --seeds " +
                          std::to_string(seeds) + " --case '" + c.name +
                          "'");
}

}  // namespace

bool same_partition(const std::vector<Node>& a, const std::vector<Node>& b) {
  if (a.size() != b.size()) return false;
  return renamed(a) == renamed(b);
}

std::vector<Node> canonical_min_labels(const Graph& g) {
  const Components cc = connected_components(g);
  const Node n = g.n();
  // Component ids are assigned in order of smallest contained node, so the
  // first node seen with a given id is that component's minimum.
  std::vector<Node> min_of(cc.count, n);
  std::vector<Node> labels(n);
  for (Node v = 0; v < n; ++v) {
    if (min_of[cc.comp[v]] == n) min_of[cc.comp[v]] = v;
    labels[v] = min_of[cc.comp[v]];
  }
  return labels;
}

std::vector<OracleCase> oracle_matrix(std::uint32_t seeds_per_family) {
  CaseBuilder b{std::max(1u, seeds_per_family), {}};

  // Deterministic families: boundary sizes plus a typical one. All are
  // engine-checked — small enough that the simulator answers quickly.
  b.add("path", "n=1", true, 0.5, [] { return path_graph(1); });
  b.add("path", "n=2", true, 0.5, [] { return path_graph(2); });
  b.add("path", "n=257", true, 0.5, [] { return path_graph(257); });
  b.add("cycle", "n=3", true, 0.5, [] { return cycle_graph(3); });
  b.add("cycle", "n=128", true, 0.5, [] { return cycle_graph(128); });
  b.add("two_cycles", "n=6", true, 0.5, [] { return two_cycles_graph(6); });
  b.add("two_cycles", "n=130", true, 0.5,
        [] { return two_cycles_graph(130); });
  b.add("star", "n=2", true, 0.5, [] { return star_graph(2); });
  b.add("star", "n=100", true, 0.5, [] { return star_graph(100); });
  b.add("complete", "n=2", true, 0.5, [] { return complete_graph(2); });
  b.add("complete", "n=24", true, 0.7, [] { return complete_graph(24); });
  b.add("grid", "rows=8,cols=16", true, 0.6, [] { return grid_graph(8, 16); });
  b.add("grid", "rows=1,cols=40", true, 0.5, [] { return grid_graph(1, 40); });
  b.add("caterpillar", "spine=10,legs=3,copies=4", true, 0.5,
        [] { return caterpillar_forest(10, 3, 4); });
  b.add("btree", "n=300", true, 0.5, [] { return balanced_binary_tree(300); });
  b.add("hypercube", "d=7", true, 0.7, [] { return hypercube_graph(7); });

  // Random families x seeds, engine-checked.
  b.add_seeded("tree", "n=150", true, 0.5,
               [](std::uint64_t s) { return random_tree(150, Prf(s)); });
  b.add_seeded("forest", "n=200,trees=12", true, 0.5, [](std::uint64_t s) {
    return random_forest(200, 12, Prf(s));
  });
  b.add_seeded("random", "n=128,p=0.05", true, 0.7, [](std::uint64_t s) {
    return random_graph(128, 0.05, Prf(s));
  });
  b.add_seeded("random", "n=96,p=0.15", true, 0.8, [](std::uint64_t s) {
    return random_graph(96, 0.15, Prf(s));
  });
  b.add_seeded("regular", "n=64,d=3", true, 0.6, [](std::uint64_t s) {
    return random_regular_graph(64, 3, Prf(s));
  });
  b.add_seeded("bounded_degree", "n=150,max_deg=4,m=180", true, 0.6,
               [](std::uint64_t s) {
                 return random_bounded_degree_graph(150, 4, 180, Prf(s));
               });

  // Native-only large cells: sizes where the simulated engine would crawl
  // but the lock-free tier answers in milliseconds; these exercise the
  // Afforest sampling/skip machinery against a giant component (BFS stays
  // the referee).
  b.add("two_cycles", "n=10000", false, 0.5,
        [] { return two_cycles_graph(10000); });
  b.add("grid", "rows=64,cols=64", false, 0.5,
        [] { return grid_graph(64, 64); });
  b.add("btree", "n=20000", false, 0.5,
        [] { return balanced_binary_tree(20000); });
  b.add_seeded("random", "n=4096,p=0.001", false, 0.5, [](std::uint64_t s) {
    return random_graph(4096, 0.001, Prf(s));
  });
  return std::move(b.cases);
}

OracleReport run_oracle(std::uint32_t seeds_per_family,
                        const std::string& filter, std::ostream* log) {
  const std::uint32_t seeds = std::max(1u, seeds_per_family);
  OracleReport report;
  for (const OracleCase& c : oracle_matrix(seeds)) {
    if (!filter.empty() && c.name.find(filter) == std::string::npos) {
      continue;
    }
    const std::size_t failures_before = report.failures.size();
    const Graph g = c.build();
    const std::vector<Node> canon = canonical_min_labels(g);

    // The lock-free tier, three ways: default (Afforest sampling), skip
    // disabled, and pure Shiloach-Vishkin. All must land on the exact
    // canonical labeling — not merely the same partition.
    const NativeComponentsResult sampled = components_native(g);
    check_labels(c, "native", sampled.labels, canon, /*exact=*/true, report,
                 seeds);
    NativeOptions noskip;
    noskip.skip_giant = false;
    check_labels(c, "native:skip_giant=0", components_native(g, noskip).labels,
                 canon, /*exact=*/true, report, seeds);
    NativeOptions pure;
    pure.neighbor_rounds = 0;
    check_labels(c, "native:neighbor_rounds=0",
                 components_native(g, pure).labels, canon, /*exact=*/true,
                 report, seeds);

    std::uint64_t engine_rounds = 0;
    if (c.engine && g.n() >= 1) {
      const LegalGraph legal = LegalGraph::with_identity(g);
      const MpcConfig cfg = MpcConfig::for_graph(
          std::max<std::uint64_t>(1, g.n()), g.m(), c.phi);
      {
        Cluster cluster(cfg);
        const ConnectivityResult semantic = hash_to_min_components(
            cluster, legal, 4 * ceil_log2(std::max<Node>(2, g.n())) + 16);
        if (!semantic.converged) {
          report.ok = false;
          report.failures.push_back(c.name +
                                    " [mpc:hash-to-min]: did not converge");
          report.repros.push_back("tools/oracle_check --seeds " +
                                  std::to_string(seeds) + " --case '" +
                                  c.name + "'");
        } else {
          check_labels(c, "mpc:hash-to-min", semantic.labels, canon,
                       /*exact=*/false, report, seeds);
        }
        engine_rounds = cluster.rounds();
      }
      // The fully-accounted propagation audits real per-machine storage, so
      // it only runs where one machine's space fits the widest adjacency.
      if (cfg.local_space >= 2ull + g.max_degree()) {
        Cluster cluster(cfg);
        const NativeConnectivityResult paid = native_min_label_propagation(
            cluster, legal, static_cast<std::uint64_t>(g.n()) + 16);
        if (!paid.converged) {
          report.ok = false;
          report.failures.push_back(c.name +
                                    " [mpc:propagation]: did not converge");
          report.repros.push_back("tools/oracle_check --seeds " +
                                  std::to_string(seeds) + " --case '" +
                                  c.name + "'");
        } else {
          check_labels(c, "mpc:propagation", paid.labels, canon,
                       /*exact=*/false, report, seeds);
        }
      }
      ++report.engine_runs;
    }
    ++report.cases_run;
    if (log != nullptr) {
      std::ostringstream line;
      line << (report.failures.size() == failures_before ? "ok   " : "FAIL ")
           << c.name
           << "  components=" << sampled.count
           << " skip_frac=" << sampled.sampled_skip_frac;
      if (c.engine) line << " engine_rounds=" << engine_rounds;
      *log << line.str() << "\n";
    }
  }
  return report;
}

}  // namespace mpcstab::native
