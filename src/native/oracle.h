// Differential oracle between the repo's two connectivity backends: the
// lock-free shared-memory tier (native/components.h) and the accounted MPC
// engine (algorithms/connectivity.h hash-to-min and the fully-paid
// mpc/native_connectivity.h propagation), with BFS as the neutral ground
// truth. The matrix spans every generator family in graph/generators.h at
// multiple seeds; a run fails on any label-partition mismatch after
// canonical renaming — turning the fast path into a standing correctness
// check on the engine (and vice versa). tools/oracle_check is the CLI; CI
// runs it as the `differential-oracle` job.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mpcstab::native {

/// One (family, parameters, seed) cell of the oracle matrix.
struct OracleCase {
  /// Stable id doubling as the repro selector, e.g.
  /// "random:n=128,p=0.05,seed=2" — `oracle_check --case <name>` reruns
  /// exactly this cell.
  std::string name;
  std::string family;     ///< generator family ("cycle", "random", ...)
  std::uint64_t seed = 0; ///< generator seed (0 for deterministic families)
  /// Also run the accounted MPC backends (small instances only — the
  /// engine pays simulated rounds; the big native-only cells exercise the
  /// sampling/skip machinery at sizes the simulator would crawl on).
  bool engine = false;
  double phi = 0.5;       ///< local-space exponent for the engine runs
  std::function<Graph()> build;
};

/// The full matrix: every generator family, deterministic families at
/// boundary and typical sizes, random families × `seeds_per_family` seeds
/// (>= 1), plus native-only large cells.
std::vector<OracleCase> oracle_matrix(std::uint32_t seeds_per_family);

/// True when `a` and `b` induce the same partition after renaming both by
/// first occurrence (the label values themselves may differ).
bool same_partition(const std::vector<Node>& a, const std::vector<Node>& b);

/// The canonical labeling every backend must converge to: labels[v] is the
/// smallest node index in v's component (derived from BFS ground truth).
std::vector<Node> canonical_min_labels(const Graph& g);

/// Outcome of one oracle sweep.
struct OracleReport {
  bool ok = true;
  std::uint64_t cases_run = 0;    ///< matrix cells checked
  std::uint64_t engine_runs = 0;  ///< cells that also ran the MPC engine
  std::vector<std::string> failures;  ///< one human-readable line each
  std::vector<std::string> repros;    ///< repro command per failure
};

/// Sweeps every matrix cell whose name contains `filter` (empty = all).
/// Per cell: lock-free backend with sampling on, sampling off, and pure
/// Shiloach–Vishkin (neighbor_rounds = 0) — all three must produce the
/// exact canonical labeling — and, for engine cells, hash-to-min plus (when
/// one machine's space fits the max-degree adjacency) the fully-accounted
/// native propagation, compared up to canonical renaming. `log` (optional)
/// receives one line per cell.
OracleReport run_oracle(std::uint32_t seeds_per_family,
                        const std::string& filter, std::ostream* log);

}  // namespace mpcstab::native
