#include "native/components.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/registry.h"
#include "rng/splitmix.h"
#include "support/thread_pool.h"

namespace mpcstab::native {

namespace {

/// Work is partitioned into a fixed, thread-count-independent number of
/// contiguous vertex ranges so per-range scratch (retry counts, skip
/// counts) can be summed in index order afterwards. The count over-shards
/// relative to the pool width so a slow range does not straggle the sweep.
struct Ranges {
  Node n = 0;
  std::size_t count = 0;

  explicit Ranges(Node n)
      : n(n),
        count(std::min<std::size_t>(
            std::max<Node>(n, 1),
            std::max<std::size_t>(1, 8 * global_threads()))) {}

  Node lo(std::size_t i) const {
    return static_cast<Node>(static_cast<std::uint64_t>(n) * i / count);
  }
  Node hi(std::size_t i) const {
    return static_cast<Node>(static_cast<std::uint64_t>(n) * (i + 1) / count);
  }
};

/// GAP/Afforest Link: hook the higher of the two labels' roots onto the
/// lower label. Only a current root is ever CAS-redirected, and only toward
/// a smaller index, so the smallest index of a component can never be
/// redirected — it is the unique surviving root, which is what makes the
/// final labels canonical under any interleaving. Returns the number of
/// lost CAS races (another thread moved the root first).
inline std::uint64_t link(Node u, Node v, std::atomic<Node>* comp) {
  std::uint64_t retries = 0;
  Node p1 = comp[u].load(std::memory_order_relaxed);
  Node p2 = comp[v].load(std::memory_order_relaxed);
  while (p1 != p2) {
    const Node high = p1 > p2 ? p1 : p2;
    const Node low = p1 + (p2 - high);
    const Node p_high = comp[high].load(std::memory_order_relaxed);
    // Already linked low, or we won the race to hook the root.
    if (p_high == low) break;
    if (p_high == high) {
      Node expected = high;
      if (comp[high].compare_exchange_strong(expected, low,
                                             std::memory_order_relaxed)) {
        break;
      }
      ++retries;  // another thread redirected this root first
    }
    p1 = comp[comp[high].load(std::memory_order_relaxed)].load(
        std::memory_order_relaxed);
    p2 = comp[low].load(std::memory_order_relaxed);
  }
  return retries;
}

/// One full path-compression sweep: every vertex climbs to its current
/// root. Runs after a linking barrier, so at return every comp[v] is a
/// root (concurrent compression of other vertices only shortens paths).
void compress(const Ranges& ranges, std::atomic<Node>* comp) {
  parallel_for(ranges.count, [&](std::size_t r) {
    for (Node v = ranges.lo(r); v < ranges.hi(r); ++v) {
      while (comp[v].load(std::memory_order_relaxed) !=
             comp[comp[v].load(std::memory_order_relaxed)].load(
                 std::memory_order_relaxed)) {
        comp[v].store(comp[comp[v].load(std::memory_order_relaxed)].load(
                          std::memory_order_relaxed),
                      std::memory_order_relaxed);
      }
    }
  });
}

/// Most frequent label among `samples` deterministic index draws (the
/// labels themselves depend on phase-1 races, so the *choice* of giant is
/// schedule-dependent — skipping is a pure optimization either way).
Node sample_frequent_label(const std::atomic<Node>* comp, Node n,
                           std::uint32_t samples, std::uint64_t seed) {
  SplitMix rng(seed);
  std::vector<Node> seen;
  seen.reserve(samples);
  for (std::uint32_t i = 0; i < samples; ++i) {
    const Node v = static_cast<Node>(rng.next_below(n));
    seen.push_back(comp[v].load(std::memory_order_relaxed));
  }
  std::sort(seen.begin(), seen.end());
  Node best = seen.front();
  std::size_t best_run = 0;
  for (std::size_t i = 0; i < seen.size();) {
    std::size_t j = i;
    while (j < seen.size() && seen[j] == seen[i]) ++j;
    if (j - i > best_run) {
      best_run = j - i;
      best = seen[i];
    }
    i = j;
  }
  return best;
}

}  // namespace

NativeComponentsResult components_native(const Graph& g,
                                         const NativeOptions& opts) {
  // Per-job attribution through the PR-7 overlay registry: effort counters
  // land in the calling job's overlay (when bound) as well as the global
  // registry. Written once per run, on the control path — never from the
  // per-vertex inner loops.
  static obs::ScopedCounter cas_retries_metric{"native.cas_retries"};
  static obs::ScopedCounter compress_passes_metric{"native.compress_passes"};
  static obs::ScopedGauge skip_frac_metric{"native.sampled_skip_frac"};

  NativeComponentsResult result;
  const Node n = g.n();
  if (n == 0) {
    cas_retries_metric.add(0);
    compress_passes_metric.add(0);
    skip_frac_metric.set(0);
    return result;
  }

  const std::unique_ptr<std::atomic<Node>[]> comp(new std::atomic<Node>[n]);
  const Ranges ranges(n);
  parallel_for(ranges.count, [&](std::size_t r) {
    for (Node v = ranges.lo(r); v < ranges.hi(r); ++v) {
      comp[v].store(v, std::memory_order_relaxed);
    }
  });

  std::vector<std::uint64_t> range_retries(ranges.count, 0);
  const auto link_sweep = [&](auto&& links_of) {
    parallel_for(ranges.count, [&](std::size_t r) {
      std::uint64_t retries = 0;
      for (Node v = ranges.lo(r); v < ranges.hi(r); ++v) {
        retries += links_of(v);
      }
      range_retries[r] += retries;  // disjoint slot per range
    });
  };

  // Phase 1 (Afforest): link each vertex to its first `neighbor_rounds`
  // neighbors, compressing between rounds so the sample below reads roots.
  const std::uint32_t k =
      std::min<std::uint32_t>(opts.neighbor_rounds, g.max_degree());
  for (std::uint32_t round = 0; round < k; ++round) {
    link_sweep([&](Node v) -> std::uint64_t {
      const auto neigh = g.neighbors(v);
      return round < neigh.size() ? link(v, neigh[round], comp.get()) : 0;
    });
    compress(ranges, comp.get());
    ++result.compress_passes;
  }

  // Phase 2: guess the most common component and skip its members in the
  // final sweep. Every skipped edge either stays inside the giant (already
  // linked) or is re-examined from its non-skipped endpoint, so the skip
  // never loses an edge (undirected CSR stores both directions).
  Node giant = n;  // sentinel: no skipping
  const bool sampling = opts.skip_giant && k > 0 && n >= 2;
  if (sampling) {
    giant = sample_frequent_label(
        comp.get(), n, std::min<std::uint32_t>(opts.sample_count, n),
        opts.sample_seed);
  }
  std::vector<std::uint64_t> range_skipped(ranges.count, 0);
  parallel_for(ranges.count, [&](std::size_t r) {
    std::uint64_t retries = 0;
    std::uint64_t skipped = 0;
    for (Node v = ranges.lo(r); v < ranges.hi(r); ++v) {
      if (sampling &&
          comp[v].load(std::memory_order_relaxed) == giant) {
        ++skipped;
        continue;
      }
      const auto neigh = g.neighbors(v);
      for (std::size_t i = k; i < neigh.size(); ++i) {
        retries += link(v, neigh[i], comp.get());
      }
    }
    range_retries[r] += retries;
    range_skipped[r] = skipped;
  });
  compress(ranges, comp.get());
  ++result.compress_passes;

  for (std::size_t r = 0; r < ranges.count; ++r) {
    result.cas_retries += range_retries[r];
    result.sampled_skip_frac += static_cast<double>(range_skipped[r]);
  }
  result.sampled_skip_frac /= static_cast<double>(n);

  result.labels.resize(n);
  for (Node v = 0; v < n; ++v) {
    result.labels[v] = comp[v].load(std::memory_order_relaxed);
    if (result.labels[v] == v) ++result.count;
  }

  cas_retries_metric.add(result.cas_retries);
  compress_passes_metric.add(result.compress_passes);
  skip_frac_metric.set(static_cast<std::uint64_t>(
      result.sampled_skip_frac * 1e6));  // parts per million
  return result;
}

}  // namespace mpcstab::native
