// The HTTP/1.1 gateway: the service's front door for fleet traffic —
// browsers, load balancers and scrapers speak HTTP, not raw NDJSON
// sockets. One gateway instance sits in front of the executor and serves
//
//   POST /v1/query   one request JSON document (the NDJSON line schema,
//                    protocol.h) in the body; the terminal result/error
//                    event as the response body
//   GET  /metrics    Prometheus 0.0.4 exposition of the global registry
//   GET  /statusz    the executor's statusz document (global snapshot +
//                    per-in-flight-job overlay rows)
//   GET  /healthz    liveness probe ("ok\n", never touches the engine)
//
// Responses are one-shot (`Connection: close` on every exchange — load
// balancers reconnect per request, and one-shot keeps the state machine
// trivial). Unlike the old single-threaded metrics plane this absorbed
// (server.cpp's metrics_loop), every gateway connection runs on its own
// reaped session thread, so a stalled scraper holds exactly its own
// connection and nothing else.
//
// Content-addressed result cache. The engine is deterministic end to end
// (component-stable algorithms + derandomized seed selection), so a
// canonical request maps to exactly one byte string of response — results
// are cacheable forever. `canonical_request` re-serializes the *parsed*
// request struct with fixed field order, normalized defaults and canonical
// number formatting, so textually different but semantically identical
// request documents collapse to one cache key. Cache-keyed: op, backend,
// graph spec (type/n/rows/cols/degree/p/seed/edges), phi, seed, repeat,
// local_space, machines, palette, radius, simulations, seeds, s, t.
// Excluded from the key (they do not affect the response body): id, trace,
// deadline_ms. Never cached: ping (trivial), statusz (live state), and
// backend "native" (its answer is deterministic but its effort metrics —
// native.cas_retries — are schedule-dependent, so the body is not
// byte-stable across recomputation; see DESIGN.md "Backend tiers").
// Entries are LRU-evicted against a byte budget; lookups compare the full
// canonical string (never just the hash), so a hash collision can degrade
// to a miss but never serve the wrong body. A cache hit is served without
// touching the engine admission gate: `engine.admitted` does not move on
// the hit path (the acceptance invariant bench_service and the smoke
// matrix pin).
//
// Admission tiers + load shedding. A cache miss whose `deadline_ms` is
// below `GatewayOptions::shed_deadline_ms` is a *sheddable* request: when
// every engine admission slot is occupied (`engine_saturated()`), queueing
// it means near-certain deadline death at the gate, so the gateway rejects
// it immediately with 503 + `Retry-After` instead — the caller retries
// against a less loaded replica rather than burning its budget in our
// queue. Requests with no deadline, or a deadline at/above the threshold,
// queue at the gate as usual (and surface 504 if they expire there).
//
// Everything except the socket glue is socket-free: tests and benches
// construct HttpRequest values and call Gateway::handle directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/executor.h"
#include "service/protocol.h"

namespace mpcstab::service {

/// Deployment knobs of one gateway instance.
struct GatewayOptions {
  std::size_t cache_budget_bytes = 8u << 20;  ///< result-cache byte budget
  std::size_t max_body_bytes = 1u << 20;      ///< POST body admission cap
  std::size_t max_head_bytes = 8u << 10;      ///< request-head admission cap
  /// Cache-miss requests with 0 < deadline_ms < this are the sheddable
  /// admission tier: rejected with 503 while the engine gate is saturated.
  std::uint64_t shed_deadline_ms = 250;
  AdmissionLimits limits;  ///< forwarded to service::execute
};

/// FNV-1a 64-bit over `s` — the content address of a canonical request.
std::uint64_t fnv1a64(std::string_view s) noexcept;

/// The canonical cache-key form of a parsed request: fixed field order,
/// normalized defaults, response-irrelevant fields (id/trace/deadline_ms)
/// dropped. Returns "" for uncacheable requests (ping, statusz, backend
/// "native") — the gateway computes those fresh every time.
std::string canonical_request(const Request& req);

/// Content-addressed LRU response cache with a byte budget. Thread-safe;
/// entries account key + body bytes. An entry larger than the whole budget
/// is not cached at all. Exposes its occupancy through the obs registry
/// (`service.cache_bytes`/`service.cache_entries` gauges,
/// `service.cache_evictions` counter); hit/miss counting stays with the
/// caller, which knows whether a lookup was for a cacheable request.
class ResultCache {
 public:
  explicit ResultCache(std::size_t budget_bytes);

  /// The cached body for `key`, refreshing its recency; nullopt on miss.
  std::optional<std::string> lookup(const std::string& key);

  /// Inserts (or refreshes) `key -> body`, evicting LRU entries until the
  /// budget holds again.
  void insert(const std::string& key, std::string body);

  std::size_t bytes() const;    ///< current occupancy (keys + bodies)
  std::size_t entries() const;  ///< current entry count

 private:
  struct Entry {
    std::string key;
    std::string body;
  };

  void publish_occupancy_locked();

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
};

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< origin-form target, query string included
  std::string version;  ///< "HTTP/1.1"
  /// Header (name, value) pairs in arrival order; names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header value for `name` (lowercase); nullptr when absent.
  const std::string* header(std::string_view name) const;
};

/// One HTTP response, serialized with Content-Length and
/// `Connection: close` (the gateway is one exchange per connection).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;

  std::string serialize() const;  ///< full wire bytes, headers + body
};

/// Incremental HTTP/1.1 request reader: feed socket bytes as they arrive;
/// the parser accumulates the head (bounded by max_head_bytes, 431 on
/// overflow), validates the request line and headers, then reads exactly
/// Content-Length body bytes (bounded by max_body_bytes, 413 on overflow;
/// 411 for a POST without a length; 400 for malformed syntax). Socket-free
/// so malformed-input tests need no live server.
class HttpRequestParser {
 public:
  enum class State : std::uint8_t { kHead, kBody, kDone, kError };

  HttpRequestParser(std::size_t max_head_bytes, std::size_t max_body_bytes);

  /// Consumes `data`; returns the parser state afterwards. Once kDone or
  /// kError is reached further bytes are ignored.
  State feed(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }

  /// The rejection response for state kError (400/411/413/431 + reason).
  HttpResponse error_response() const;

 private:
  void parse_head();
  void fail(int status, std::string reason);

  std::size_t max_head_;
  std::size_t max_body_;
  State state_ = State::kHead;
  std::string buffer_;
  std::size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_reason_;
};

/// The gateway proper: stateless HTTP dispatch over the executor plus the
/// shared result cache. `handle` is safe to call from many session threads
/// at once (the cache is internally locked; the executor is already
/// concurrent behind its admission gate).
class Gateway {
 public:
  explicit Gateway(GatewayOptions opts);

  /// Routes one parsed request to its endpoint and produces the response.
  HttpResponse handle(const HttpRequest& http);

  const GatewayOptions& options() const { return opts_; }
  ResultCache& cache() { return cache_; }

 private:
  HttpResponse handle_query(const HttpRequest& http);

  GatewayOptions opts_;
  ResultCache cache_;
};

}  // namespace mpcstab::service
