// Wire protocol of the mpcstabd query service: newline-delimited JSON in
// both directions.
//
// Requests (one JSON object per line):
//   {"id":1,"op":"connectivity","graph":{"type":"cycle","n":512},
//    "seed":7,"phi":0.5,"trace":true,"deadline_ms":2000,"repeat":1}
//
// Ops: "connectivity", "coloring", "mis", "lifting", "sensitivity",
// "ping", "statusz". Graph types: "cycle", "two_cycles", "path", "star",
// "complete", "grid", "tree", "random", "regular", "edges" (explicit edge
// list). Optional "local_space"/"machines" override the derived MpcConfig
// (admission-control and fault-injection testing). Op parameters:
// "palette" (coloring), "radius"/"simulations"/"s"/"t" (lifting),
// "radius"/"seeds" (sensitivity).
//
// Optional "backend" selects the execution tier (DESIGN.md "Backend
// tiers"): "mpc" (default — the accounted engine, today's wire behavior)
// or "native" (the lock-free shared-memory tier; connectivity only). A
// native result reports the same answer schema with "rounds":0 — no round
// or word accounting is charged — and its per-request "metrics" carry the
// native.* effort counters instead of engine accounting.
//
// Responses are NDJSON events, each echoing the request "id":
//   {"id":1,"event":"trace","seq":3,"trace":{...}}     (when "trace":true)
//   {"id":1,"event":"result","ok":true,"op":...,"rounds":...,"words":...,
//    "answer":{...}}
//   {"id":1,"event":"error","kind":"SpaceLimitError","message":"..."}
// plus connection-level lines {"event":"hello",...} and {"event":"bye",...}.
//
// This header is self-contained parsing/serialization — no sockets, no
// threads — so tests can round-trip frames without a live server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "mpc/config.h"

namespace mpcstab::service {

/// Input-graph description carried by a request.
struct GraphSpec {
  std::string type;  ///< generator name; see header comment
  Node n = 0;
  Node rows = 0, cols = 0;       ///< grid
  std::uint32_t degree = 0;      ///< regular
  double p = 0.0;                ///< random: edge probability
  std::uint64_t seed = 1;        ///< generator randomness
  std::vector<Edge> edges;       ///< type == "edges"
};

/// One parsed request line.
struct Request {
  std::uint64_t id = 0;          ///< echoed in every response event
  std::string op;
  std::string backend = "mpc";   ///< tier: "mpc" | "mpc-native" | "native"
  GraphSpec graph;
  double phi = 0.5;
  std::uint64_t seed = 1;        ///< shared-randomness seed for the run
  std::uint32_t repeat = 1;      ///< run the op this many times (throughput)
  std::uint64_t deadline_ms = 0; ///< 0 = no deadline
  bool trace = false;            ///< stream trace events back to the client
  std::uint64_t local_space = 0; ///< 0 = derive from (n, phi)
  std::uint64_t machines = 0;    ///< 0 = derive from (n, m, phi)
  // Op parameters.
  std::uint64_t palette = 0;     ///< coloring; 0 = Delta+1
  std::uint32_t radius = 3;      ///< lifting/sensitivity D
  std::uint64_t simulations = 8; ///< lifting parallel simulations
  std::uint64_t seeds = 16;      ///< sensitivity: number of seeds sampled
  Node s = 0;
  Node t = 0;
  bool t_set = false;            ///< request carried an explicit "t"
};

/// parse_request outcome: exactly one of `request` / `error` is set.
struct ParsedRequest {
  std::optional<Request> request;
  std::string error;  ///< human-readable parse/validation failure
};

/// Parses one request line. Unknown fields are ignored (forward
/// compatibility); a malformed document or a missing/unknown "op" yields an
/// error. Does not validate graph parameters — build_graph does.
ParsedRequest parse_request(std::string_view line);

/// Materializes the request's graph. Throws PreconditionError on an unknown
/// type or parameters the generators reject (n too small, bad degree, ...).
Graph build_graph(const GraphSpec& spec);

/// The cluster deployment a request resolves to: explicit overrides when
/// given, else MpcConfig::for_graph(n, m, phi).
MpcConfig resolve_config(const Request& req, std::uint64_t n, std::uint64_t m);

/// Minimal incremental JSON object writer for response lines (the service
/// composes responses from heterogeneous parts; the bench-report writer in
/// obs/export.cpp is stream-oriented and schema-fixed).
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, bool value);
  /// Splices `json` (a complete JSON value or member list) verbatim.
  JsonObject& raw(std::string_view key, std::string_view json);

  /// Closes the object; the writer must not be reused afterwards.
  std::string str() &&;

 private:
  void comma();
  std::string out_ = "{";
  bool first_ = true;
};

}  // namespace mpcstab::service
