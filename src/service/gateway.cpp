#include "service/gateway.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "obs/export.h"
#include "obs/registry.h"

namespace mpcstab::service {

namespace {

/// The gateway's obs instruments, registered eagerly (Gateway ctor) so the
/// cache families exist in the exposition before any traffic arrives —
/// check_prometheus.py --require runs against freshly started daemons.
struct GatewayMetrics {
  obs::Counter& requests = obs::Registry::global().counter("service.http_requests");
  obs::Counter& cache_hits = obs::Registry::global().counter("service.cache_hits");
  obs::Counter& cache_misses =
      obs::Registry::global().counter("service.cache_misses");
  obs::Counter& shed = obs::Registry::global().counter("service.shed");
  obs::Counter& scrapes =
      obs::Registry::global().counter("service.metric_scrapes");
};

GatewayMetrics& gateway_metrics() {
  static GatewayMetrics metrics;
  return metrics;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

/// The executor's structured error taxonomy, folded onto HTTP status
/// codes. DeadlineExceeded is the *upstream* timing out on us → 504;
/// SpaceLimitError is a semantically valid request the low-space model
/// rejects → 422.
int status_for_error_kind(const std::string& kind) {
  if (kind == "BadRequest") return 400;
  if (kind == "AdmissionDenied") return 403;
  if (kind == "DeadlineExceeded") return 504;
  if (kind == "SpaceLimitError") return 422;
  return 500;  // Error / InternalError / anything new
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf, 16);
}

std::string error_event_body(const std::string& kind, const std::string& message,
                             const std::string& op) {
  JsonObject out;
  out.field("event", "error").field("kind", kind).field("message", message);
  if (!op.empty()) out.field("op", op);
  std::string body = std::move(out).str();
  body += '\n';
  return body;
}

HttpResponse error_event_response(int status, const std::string& kind,
                                  const std::string& message,
                                  const std::string& op = "") {
  HttpResponse res;
  res.status = status;
  res.content_type = "application/json";
  res.body = error_event_body(kind, message, op);
  return res;
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// The request target with any query string stripped — routing is
/// path-only, like the old metrics plane.
std::string route_path(const std::string& target) {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string canonical_request(const Request& req) {
  // ping is trivial, statusz is live state, and the "native" tier's effort
  // metrics (native.cas_retries) are schedule-dependent — none of their
  // bodies are byte-stable, so none are addressable content.
  if (req.op == "ping" || req.op == "statusz" || req.backend == "native") {
    return std::string();
  }
  std::string edges = "[";
  for (std::size_t i = 0; i < req.graph.edges.size(); ++i) {
    if (i != 0) edges += ',';
    edges += '[';
    edges += std::to_string(req.graph.edges[i].u);
    edges += ',';
    edges += std::to_string(req.graph.edges[i].v);
    edges += ']';
  }
  edges += ']';
  const std::string graph =
      std::move(JsonObject()
                    .field("type", req.graph.type)
                    .field("n", static_cast<std::uint64_t>(req.graph.n))
                    .field("rows", static_cast<std::uint64_t>(req.graph.rows))
                    .field("cols", static_cast<std::uint64_t>(req.graph.cols))
                    .field("degree",
                           static_cast<std::uint64_t>(req.graph.degree))
                    .field("p", req.graph.p)
                    .field("seed", req.graph.seed)
                    .raw("edges", edges))
          .str();
  // Fixed field order, every field present (parse-time defaults already
  // applied), id/trace/deadline_ms excluded: they never change the body.
  return std::move(JsonObject()
                       .field("op", req.op)
                       .field("backend", req.backend)
                       .raw("graph", graph)
                       .field("phi", req.phi)
                       .field("seed", req.seed)
                       .field("repeat", static_cast<std::uint64_t>(req.repeat))
                       .field("local_space", req.local_space)
                       .field("machines", req.machines)
                       .field("palette", req.palette)
                       .field("radius", static_cast<std::uint64_t>(req.radius))
                       .field("simulations", req.simulations)
                       .field("seeds", req.seeds)
                       .field("s", static_cast<std::uint64_t>(req.s))
                       .field("t", static_cast<std::uint64_t>(req.t))
                       .field("t_set", req.t_set))
      .str();
}

ResultCache::ResultCache(std::size_t budget_bytes) : budget_(budget_bytes) {
  // Instantiate the occupancy instruments (and the eviction counter) even
  // if this cache never sees traffic.
  obs::Registry::global().counter("service.cache_evictions");
  publish_occupancy_locked();
}

void ResultCache::publish_occupancy_locked() {
  static obs::Gauge& cache_bytes =
      obs::Registry::global().gauge("service.cache_bytes");
  static obs::Gauge& cache_entries =
      obs::Registry::global().gauge("service.cache_entries");
  cache_bytes.set(bytes_);
  cache_entries.set(lru_.size());
}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->body;
}

void ResultCache::insert(const std::string& key, std::string body) {
  static obs::Counter& evictions =
      obs::Registry::global().counter("service.cache_evictions");
  const std::size_t cost = key.size() + body.size();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Deterministic engine: a re-computed body is byte-identical, so a
    // refresh only updates recency (and tolerates a changed size anyway).
    bytes_ -= it->second->key.size() + it->second->body.size();
    bytes_ += cost;
    it->second->body = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    publish_occupancy_locked();
    return;
  }
  if (cost > budget_) return;  // would evict everything and still not fit
  lru_.push_front(Entry{key, std::move(body)});
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.key.size() + victim.body.size();
    index_.erase(victim.key);
    lru_.pop_back();
    evictions.add(1);
  }
  publish_occupancy_locked();
}

std::size_t ResultCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t ResultCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  for (const auto& [name, value] : extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

HttpRequestParser::HttpRequestParser(std::size_t max_head_bytes,
                                     std::size_t max_body_bytes)
    : max_head_(max_head_bytes), max_body_(max_body_bytes) {}

void HttpRequestParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  buffer_.clear();
  buffer_.shrink_to_fit();
}

HttpResponse HttpRequestParser::error_response() const {
  return error_event_response(error_status_, "BadRequest", error_reason_);
}

HttpRequestParser::State HttpRequestParser::feed(std::string_view data) {
  if (state_ == State::kHead) {
    buffer_.append(data.data(), data.size());
    data = {};
    // The head ends at the first blank line; tolerate bare-LF clients.
    std::size_t head_end = std::string::npos;
    std::size_t body_start = 0;
    if (const std::size_t crlf = buffer_.find("\r\n\r\n");
        crlf != std::string::npos) {
      head_end = crlf;
      body_start = crlf + 4;
    }
    if (const std::size_t lf = buffer_.find("\n\n");
        lf != std::string::npos && lf < head_end) {
      head_end = lf;
      body_start = lf + 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > max_head_) {
        fail(431, "request head exceeds " + std::to_string(max_head_) +
                      " bytes");
      }
      return state_;
    }
    if (head_end > max_head_) {
      fail(431, "request head exceeds " + std::to_string(max_head_) + " bytes");
      return state_;
    }
    std::string rest = buffer_.substr(body_start);
    buffer_.resize(head_end);
    parse_head();
    if (state_ == State::kError) return state_;
    state_ = State::kBody;
    data = rest;  // fall through: any body bytes already buffered
    if (!data.empty()) {
      request_.body.append(data.data(),
                           std::min(data.size(),
                                    body_expected_ - request_.body.size()));
    }
    if (request_.body.size() >= body_expected_) state_ = State::kDone;
    buffer_.clear();
    buffer_.shrink_to_fit();
    return state_;
  }
  if (state_ == State::kBody) {
    request_.body.append(data.data(),
                         std::min(data.size(),
                                  body_expected_ - request_.body.size()));
    if (request_.body.size() >= body_expected_) state_ = State::kDone;
  }
  return state_;  // kDone / kError: further bytes ignored
}

void HttpRequestParser::parse_head() {
  // Request line: METHOD SP TARGET SP VERSION.
  std::size_t line_end = buffer_.find('\n');
  std::string_view request_line(buffer_.data(),
                                line_end == std::string::npos ? buffer_.size()
                                                              : line_end);
  request_line = trim(request_line);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    fail(400, "malformed request line");
    return;
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(trim(request_line.substr(sp2 + 1)));
  if (request_.method.empty() || request_.target.empty() ||
      request_.version.rfind("HTTP/", 0) != 0) {
    fail(400, "malformed request line");
    return;
  }
  // Header fields: NAME ":" VALUE, one per line, names lowercased.
  std::size_t pos = line_end == std::string::npos ? buffer_.size()
                                                  : line_end + 1;
  while (pos < buffer_.size()) {
    std::size_t end = buffer_.find('\n', pos);
    if (end == std::string::npos) end = buffer_.size();
    const std::string_view line =
        trim(std::string_view(buffer_.data() + pos, end - pos));
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      fail(400, "malformed header field");
      return;
    }
    request_.headers.emplace_back(
        lowercase(std::string(trim(line.substr(0, colon)))),
        std::string(trim(line.substr(colon + 1))));
  }
  // Body framing: Content-Length only (the gateway does not accept chunked
  // uploads — request documents are small and clients are simple).
  const std::string* length = request_.header("content-length");
  if (length == nullptr) {
    if (request_.method == "POST" || request_.method == "PUT") {
      fail(411, "POST requires Content-Length");
      return;
    }
    body_expected_ = 0;
    return;
  }
  if (length->empty() ||
      !std::all_of(length->begin(), length->end(),
                   [](unsigned char c) { return std::isdigit(c); }) ||
      length->size() > 12) {
    fail(400, "malformed Content-Length");
    return;
  }
  body_expected_ = static_cast<std::size_t>(std::stoull(*length));
  if (body_expected_ > max_body_) {
    fail(413, "request body exceeds " + std::to_string(max_body_) + " bytes");
    return;
  }
}

Gateway::Gateway(GatewayOptions opts)
    : opts_(opts), cache_(opts.cache_budget_bytes) {
  gateway_metrics();  // register the service.cache_*/shed families eagerly
}

HttpResponse Gateway::handle(const HttpRequest& http) {
  GatewayMetrics& metrics = gateway_metrics();
  metrics.requests.add(1);
  const std::string path = route_path(http.target);
  if (path == "/healthz" || path == "/metrics" || path == "/statusz") {
    if (http.method != "GET") {
      HttpResponse res = error_event_response(
          405, "BadRequest", "only GET is served on " + path);
      res.extra_headers.emplace_back("Allow", "GET");
      return res;
    }
    HttpResponse res;
    if (path == "/healthz") {
      res.body = "ok\n";
    } else if (path == "/metrics") {
      metrics.scrapes.add(1);
      res.content_type = "text/plain; version=0.0.4; charset=utf-8";
      res.body = obs::prometheus_text();
    } else {
      res.content_type = "application/json";
      res.body = statusz_json();
      res.body += '\n';
    }
    return res;
  }
  if (path == "/v1/query") {
    if (http.method != "POST") {
      HttpResponse res = error_event_response(
          405, "BadRequest", "queries are POSTed to /v1/query");
      res.extra_headers.emplace_back("Allow", "POST");
      return res;
    }
    return handle_query(http);
  }
  return error_event_response(
      404, "BadRequest", "try /v1/query, /metrics, /statusz or /healthz");
}

HttpResponse Gateway::handle_query(const HttpRequest& http) {
  GatewayMetrics& metrics = gateway_metrics();
  ParsedRequest parsed = parse_request(http.body);
  if (!parsed.request.has_value()) {
    return error_event_response(400, "BadRequest", parsed.error);
  }
  const Request& req = *parsed.request;

  const std::string canonical = canonical_request(req);
  const bool cacheable = !canonical.empty();
  std::vector<std::pair<std::string, std::string>> cache_headers;
  if (cacheable) {
    cache_headers.emplace_back("X-Cache-Key", hex64(fnv1a64(canonical)));
    if (std::optional<std::string> body = cache_.lookup(canonical)) {
      // The hit path: the body is served verbatim from the cache and the
      // engine admission gate is never touched — engine.admitted must not
      // move here (the acceptance invariant the smoke matrix pins).
      metrics.cache_hits.add(1);
      HttpResponse res;
      res.content_type = "application/json";
      res.extra_headers = std::move(cache_headers);
      res.extra_headers.emplace_back("X-Cache", "hit");
      res.body = std::move(*body);
      return res;
    }
    metrics.cache_misses.add(1);
    cache_headers.emplace_back("X-Cache", "miss");
  } else {
    cache_headers.emplace_back("X-Cache", "bypass");
  }

  // Sheddable tier: a cache miss that must finish within a tight deadline
  // while every engine slot is occupied would only queue to certain
  // deadline death at the gate — reject it now so the caller's budget
  // survives to retry elsewhere.
  if (req.deadline_ms != 0 && req.deadline_ms < opts_.shed_deadline_ms &&
      engine_saturated() && req.op != "ping" && req.op != "statusz" &&
      req.op != "sensitivity") {
    metrics.shed.add(1);
    HttpResponse res = error_event_response(
        503, "Overloaded",
        "engine saturated and deadline_ms=" + std::to_string(req.deadline_ms) +
            " is below the shed threshold " +
            std::to_string(opts_.shed_deadline_ms) + "ms; retry later",
        req.op);
    res.extra_headers = std::move(cache_headers);
    res.extra_headers.emplace_back("Retry-After", "1");
    return res;
  }

  ExecOptions exec_opts;
  if (req.deadline_ms != 0) {
    exec_opts.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(req.deadline_ms);
  }
  ExecResult result = execute(req, exec_opts, opts_.limits);
  if (!result.ok) {
    HttpResponse res =
        error_event_response(status_for_error_kind(result.error_kind),
                             result.error_kind, result.error_message, req.op);
    res.extra_headers = std::move(cache_headers);
    return res;
  }

  // Same schema as the NDJSON result event, minus the "id" echo (HTTP
  // responses pair with their request by the connection, not an id).
  std::string body = std::move(JsonObject()
                                   .field("event", "result")
                                   .field("ok", true)
                                   .field("op", req.op)
                                   .field("rounds", result.rounds)
                                   .field("words", result.words)
                                   .raw("metrics", result.metrics_json)
                                   .raw("answer", result.answer_json))
                         .str();
  body += '\n';
  if (cacheable) cache_.insert(canonical, body);
  HttpResponse res;
  res.content_type = "application/json";
  res.extra_headers = std::move(cache_headers);
  res.body = std::move(body);
  return res;
}

}  // namespace mpcstab::service
