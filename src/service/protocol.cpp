#include "service/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "graph/generators.h"
#include "obs/export.h"
#include "rng/prf.h"
#include "support/check.h"

namespace mpcstab::service {

namespace {

/// Finite-double JSON literal (JSON has no inf/nan).
std::string number_literal(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  char shorter[32];
  std::snprintf(shorter, sizeof(shorter), "%g", value);
  double back = 0.0;
  if (std::sscanf(shorter, "%lf", &back) == 1 && back == value) {
    return shorter;
  }
  return buf;
}

/// Reads an unsigned integer member; `fallback` when absent. The schema's
/// integers all fit in 2^53, where the double round-trip is exact.
std::uint64_t uint_or(const obs::JsonValue& obj, std::string_view key,
                      std::uint64_t fallback) {
  const obs::JsonValue* member = obj.find(key);
  if (member == nullptr || member->kind != obs::JsonValue::Kind::kNumber) {
    return fallback;
  }
  const double v = member->number;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

double double_or(const obs::JsonValue& obj, std::string_view key,
                 double fallback) {
  const obs::JsonValue* member = obj.find(key);
  if (member == nullptr || member->kind != obs::JsonValue::Kind::kNumber) {
    return fallback;
  }
  return member->number;
}

bool bool_or(const obs::JsonValue& obj, std::string_view key, bool fallback) {
  const obs::JsonValue* member = obj.find(key);
  if (member == nullptr || member->kind != obs::JsonValue::Kind::kBool) {
    return fallback;
  }
  return member->boolean;
}

bool parse_graph_spec(const obs::JsonValue& obj, GraphSpec& spec,
                      std::string& error) {
  spec.type = obj.str("type");
  if (spec.type.empty()) {
    error = "graph.type missing";
    return false;
  }
  spec.n = static_cast<Node>(uint_or(obj, "n", 0));
  spec.rows = static_cast<Node>(uint_or(obj, "rows", 0));
  spec.cols = static_cast<Node>(uint_or(obj, "cols", 0));
  spec.degree = static_cast<std::uint32_t>(uint_or(obj, "degree", 0));
  spec.p = double_or(obj, "p", 0.0);
  spec.seed = uint_or(obj, "seed", 1);
  if (const obs::JsonValue* edges = obj.find("edges"); edges != nullptr) {
    if (edges->kind != obs::JsonValue::Kind::kArray) {
      error = "graph.edges must be an array of [u,v] pairs";
      return false;
    }
    spec.edges.reserve(edges->array.size());
    for (const obs::JsonValue& e : edges->array) {
      if (e.kind != obs::JsonValue::Kind::kArray || e.array.size() != 2 ||
          e.array[0].kind != obs::JsonValue::Kind::kNumber ||
          e.array[1].kind != obs::JsonValue::Kind::kNumber) {
        error = "graph.edges entries must be [u,v] number pairs";
        return false;
      }
      spec.edges.push_back(Edge{static_cast<Node>(e.array[0].number),
                                static_cast<Node>(e.array[1].number)});
    }
  }
  return true;
}

constexpr std::string_view kKnownOps[] = {
    "connectivity", "coloring", "mis", "lifting", "sensitivity",
    "ping",         "statusz",
};

bool known_op(std::string_view op) {
  for (const std::string_view candidate : kKnownOps) {
    if (op == candidate) return true;
  }
  return false;
}

}  // namespace

ParsedRequest parse_request(std::string_view line) {
  ParsedRequest out;
  const std::optional<obs::JsonValue> doc = obs::parse_json(line);
  if (!doc.has_value() || doc->kind != obs::JsonValue::Kind::kObject) {
    out.error = "request is not a JSON object";
    return out;
  }
  Request req;
  req.op = doc->str("op");
  if (req.op.empty()) {
    out.error = "missing \"op\"";
    return out;
  }
  if (!known_op(req.op)) {
    out.error = "unknown op \"" + req.op + "\"";
    return out;
  }
  req.id = uint_or(*doc, "id", 0);
  if (const obs::JsonValue* backend = doc->find("backend");
      backend != nullptr) {
    if (backend->kind != obs::JsonValue::Kind::kString) {
      out.error = "\"backend\" must be a string";
      return out;
    }
    req.backend = backend->string;
    if (req.backend != "mpc" && req.backend != "native" &&
        req.backend != "mpc-native") {
      out.error = "unknown backend \"" + req.backend +
                  "\" (want \"mpc\", \"mpc-native\" or \"native\")";
      return out;
    }
    if (req.backend != "mpc" && req.op != "connectivity") {
      out.error = "backend \"" + req.backend +
                  "\" only supports op \"connectivity\"";
      return out;
    }
  }
  req.phi = double_or(*doc, "phi", 0.5);
  req.seed = uint_or(*doc, "seed", 1);
  req.repeat = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, uint_or(*doc, "repeat", 1)));
  req.deadline_ms = uint_or(*doc, "deadline_ms", 0);
  req.trace = bool_or(*doc, "trace", false);
  req.local_space = uint_or(*doc, "local_space", 0);
  req.machines = uint_or(*doc, "machines", 0);
  req.palette = uint_or(*doc, "palette", 0);
  req.radius =
      static_cast<std::uint32_t>(std::max<std::uint64_t>(
          1, uint_or(*doc, "radius", 3)));
  req.simulations = std::max<std::uint64_t>(1, uint_or(*doc, "simulations", 8));
  req.seeds = std::max<std::uint64_t>(1, uint_or(*doc, "seeds", 16));
  req.s = static_cast<Node>(uint_or(*doc, "s", 0));
  if (const obs::JsonValue* t = doc->find("t");
      t != nullptr && t->kind == obs::JsonValue::Kind::kNumber) {
    req.t = static_cast<Node>(t->number);
    req.t_set = true;
  }
  const bool needs_graph =
      req.op != "ping" && req.op != "statusz" && req.op != "sensitivity";
  if (const obs::JsonValue* graph = doc->find("graph"); graph != nullptr) {
    if (graph->kind != obs::JsonValue::Kind::kObject) {
      out.error = "\"graph\" must be an object";
      return out;
    }
    std::string error;
    if (!parse_graph_spec(*graph, req.graph, error)) {
      out.error = std::move(error);
      return out;
    }
  } else if (needs_graph) {
    out.error = "op \"" + req.op + "\" requires a \"graph\"";
    return out;
  }
  if (req.phi <= 0.0 || req.phi >= 1.0) {
    out.error = "phi must be in (0,1)";
    return out;
  }
  out.request = std::move(req);
  return out;
}

Graph build_graph(const GraphSpec& spec) {
  const Prf prf(spec.seed);
  if (spec.type == "cycle") return cycle_graph(spec.n);
  if (spec.type == "two_cycles") return two_cycles_graph(spec.n);
  if (spec.type == "path") return path_graph(spec.n);
  if (spec.type == "star") return star_graph(spec.n);
  if (spec.type == "complete") return complete_graph(spec.n);
  if (spec.type == "grid") return grid_graph(spec.rows, spec.cols);
  if (spec.type == "tree") return random_tree(spec.n, prf);
  if (spec.type == "random") return random_graph(spec.n, spec.p, prf);
  if (spec.type == "regular") {
    return random_regular_graph(spec.n, spec.degree, prf);
  }
  if (spec.type == "edges") return Graph::from_edges(spec.n, spec.edges);
  require(false, "unknown graph type \"" + spec.type + "\"");
  return Graph(0);  // unreachable
}

MpcConfig resolve_config(const Request& req, std::uint64_t n,
                         std::uint64_t m) {
  if (req.local_space == 0 && req.machines == 0) {
    return MpcConfig::for_graph(n, m, req.phi);
  }
  MpcConfig base = MpcConfig::for_graph(n, m, req.phi);
  if (req.local_space != 0) base.local_space = req.local_space;
  if (req.machines != 0) base.machines = req.machines;
  return base;
}

void JsonObject::comma() {
  if (!first_) out_ += ',';
  first_ = false;
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  comma();
  out_ += '"';
  out_ += obs::json_escape(key);
  out_ += "\":\"";
  out_ += obs::json_escape(value);
  out_ += '"';
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::uint64_t value) {
  comma();
  out_ += '"';
  out_ += obs::json_escape(key);
  out_ += "\":";
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::int64_t value) {
  comma();
  out_ += '"';
  out_ += obs::json_escape(key);
  out_ += "\":";
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  comma();
  out_ += '"';
  out_ += obs::json_escape(key);
  out_ += "\":";
  out_ += number_literal(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  comma();
  out_ += '"';
  out_ += obs::json_escape(key);
  out_ += "\":";
  out_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(std::string_view key, std::string_view json) {
  comma();
  out_ += '"';
  out_ += obs::json_escape(key);
  out_ += "\":";
  out_ += json;
  return *this;
}

std::string JsonObject::str() && {
  out_ += '}';
  return std::move(out_);
}

}  // namespace mpcstab::service
