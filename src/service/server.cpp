#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <utility>

#include "obs/registry.h"

namespace mpcstab::service {

namespace {

constexpr int kPollMs = 100;  ///< drain-flag check cadence for blocked I/O

/// Writes `line` + '\n' fully; MSG_NOSIGNAL so a vanished client surfaces
/// as an error return, not SIGPIPE.
bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int open_unix_listener(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "unix socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    *error = "bind/listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int open_tcp_listener(std::uint16_t port, std::uint16_t* bound,
                      std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    *error = "bind/listen 127.0.0.1:" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    *bound = ntohs(actual.sin_port);
  }
  return fd;
}

/// Writes `data` fully; MSG_NOSIGNAL so a vanished scraper surfaces as an
/// error return, not SIGPIPE.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Transient accept() failures: the connection is gone (or the call was
/// interrupted) but the listener is healthy — retry immediately. Anything
/// else (EMFILE/ENFILE/ENOMEM/ENOBUFS, ...) is resource pressure: poll()
/// will keep reporting the listener ready, so retrying without a pause
/// busy-loops a core exactly when the process is least able to afford it.
bool accept_errno_transient(int err) {
  return err == EINTR || err == ECONNABORTED || err == EAGAIN ||
         err == EWOULDBLOCK;
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  report_.bench = "mpcstabd";
  // One admission policy for both planes: the gateway enforces the same
  // limits the NDJSON path passes to service::execute.
  opts_.gateway.limits = opts_.limits;
  gateway_ = std::make_unique<Gateway>(opts_.gateway);
}

Server::~Server() {
  begin_drain();
  wait();
}

bool Server::start(std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  if (opts_.unix_path.empty() && !opts_.listen_tcp && !opts_.http) {
    *error = "no listener configured (need a unix path, TCP or HTTP)";
    return false;
  }
  if (!opts_.unix_path.empty()) {
    unix_fd_ = open_unix_listener(opts_.unix_path, error);
    if (unix_fd_ < 0) return false;
  }
  if (opts_.listen_tcp) {
    tcp_fd_ = open_tcp_listener(opts_.tcp_port, &tcp_port_, error);
    if (tcp_fd_ < 0) {
      if (unix_fd_ >= 0) ::close(unix_fd_);
      unix_fd_ = -1;
      return false;
    }
  }
  if (opts_.http) {
    http_fd_ = open_tcp_listener(opts_.http_port, &http_port_, error);
    if (http_fd_ < 0) {
      if (unix_fd_ >= 0) ::close(unix_fd_);
      if (tcp_fd_ >= 0) ::close(tcp_fd_);
      unix_fd_ = tcp_fd_ = -1;
      return false;
    }
  }
  if (!opts_.trace_path.empty()) {
    capture_.open(opts_.trace_path, std::ios::out | std::ios::trunc);
    if (!capture_) {
      *error = "cannot open trace file " + opts_.trace_path;
      if (unix_fd_ >= 0) ::close(unix_fd_);
      if (tcp_fd_ >= 0) ::close(tcp_fd_);
      if (http_fd_ >= 0) ::close(http_fd_);
      unix_fd_ = tcp_fd_ = http_fd_ = -1;
      return false;
    }
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::begin_drain() { draining_.store(true, std::memory_order_relaxed); }

void Server::wait() {
  std::lock_guard<std::mutex> guard(wait_mutex_);
  if (waited_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Sessions can spawn only from the accept thread, so after the join the
  // list is final.
  for (SessionSlot& session : sessions_) {
    if (session.thread.joinable()) session.thread.join();
  }
  sessions_.clear();
  if (capture_.is_open()) capture_.close();
  if (!opts_.json_path.empty()) {
    std::lock_guard<std::mutex> lock(report_mutex_);
    if (!obs::write_bench_json(opts_.json_path, report_)) {
      std::cerr << "mpcstabd: cannot write " << opts_.json_path << "\n";
    }
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
  waited_ = true;
}

void Server::capture_line(const std::string& line) {
  if (!capture_.is_open()) return;
  std::lock_guard<std::mutex> lock(capture_mutex_);
  capture_ << line << '\n';
  // Line-buffered on purpose: the capture must be complete even if the
  // process is killed right after a request finishes.
  capture_.flush();
}

void Server::spawn_session_locked(std::function<void()> body) {
  // The done flag outlives this Server-side bookkeeping by construction
  // (shared_ptr), and its release store is the session's very last action,
  // so done == true implies the thread is past all of its work — joining
  // it cannot block on anything.
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread thread([body = std::move(body), done] {
    body();
    done->store(true, std::memory_order_release);
  });
  sessions_.push_back(SessionSlot{std::move(thread), std::move(done)});
}

void Server::reap_finished_locked() {
  sessions_.remove_if([](SessionSlot& slot) {
    if (!slot.done->load(std::memory_order_acquire)) return false;
    if (slot.thread.joinable()) slot.thread.join();
    return true;
  });
}

std::size_t Server::live_sessions() {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  reap_finished_locked();
  return sessions_.size();
}

void Server::accept_loop() {
  static obs::Counter& connections =
      obs::Registry::global().counter("service.connections");
  static obs::Counter& accept_errors =
      obs::Registry::global().counter("service.accept_errors");
  // Accept-failure backoff (satellite of the EMFILE hot-spin fix): grows
  // on consecutive hard failures, resets on any success.
  constexpr int kBackoffBaseMs = 10;
  constexpr int kBackoffCapMs = 1000;
  int backoff_ms = kBackoffBaseMs;
  while (!draining()) {
    pollfd fds[3];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) fds[nfds++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = pollfd{tcp_fd_, POLLIN, 0};
    if (http_fd_ >= 0) fds[nfds++] = pollfd{http_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, kPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the drain flag
    bool hard_failure = false;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const bool is_http = fds[i].fd == http_fd_ && http_fd_ >= 0;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) {
        if (!accept_errno_transient(errno)) {
          // EMFILE/ENFILE & friends: poll() stays hot while the listener
          // backlog is non-empty, so without a pause this loop spins a
          // full core. Back off (in drain-responsive slices) instead.
          accept_errors.add(1);
          hard_failure = true;
        }
        continue;
      }
      backoff_ms = kBackoffBaseMs;
      connections.add(1);
      const std::uint64_t conn_id =
          next_conn_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      // Reap on every accept: the slot table stays proportional to live
      // connections, not to the daemon's lifetime connection count.
      reap_finished_locked();
      if (is_http) {
        spawn_session_locked(
            [this, client, conn_id] { http_session_loop(client, conn_id); });
      } else {
        spawn_session_locked(
            [this, client, conn_id] { session_loop(client, conn_id); });
      }
    }
    if (hard_failure) {
      for (int slept = 0; slept < backoff_ms && !draining();
           slept += kPollMs) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(kPollMs, backoff_ms - slept)));
      }
      backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
    }
  }
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (http_fd_ >= 0) ::close(http_fd_);
  unix_fd_ = tcp_fd_ = http_fd_ = -1;
}

/// One gateway exchange: feed socket bytes to the incremental HTTP parser
/// (idle-bounded so an abandoned connection releases its thread), hand the
/// parsed request to the gateway, write the response, close. One request
/// per connection — the gateway answers `Connection: close` always.
void Server::http_session_loop(int fd, std::uint64_t conn_id) {
  (void)conn_id;
  HttpRequestParser parser(gateway_->options().max_head_bytes,
                           gateway_->options().max_body_bytes);
  // ~10s of idle patience: generous for a loopback client, finite so a
  // half-open socket cannot pin a session slot forever.
  constexpr int kMaxIdlePolls = 100;
  int idle_polls = 0;
  while (parser.state() == HttpRequestParser::State::kHead ||
         parser.state() == HttpRequestParser::State::kBody) {
    if (draining() || idle_polls >= kMaxIdlePolls) {
      ::close(fd);
      return;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) {
      ::close(fd);
      return;
    }
    if (ready <= 0) {
      ++idle_polls;
      continue;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);  // EOF before a complete request: nothing to answer
      return;
    }
    idle_polls = 0;
    parser.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
  const HttpResponse response =
      parser.state() == HttpRequestParser::State::kDone
          ? gateway_->handle(parser.request())
          : parser.error_response();
  write_all(fd, response.serialize());
  ::close(fd);
}

void Server::handle_line(int fd, std::uint64_t conn_id, std::uint64_t* failed,
                         const std::string& line) {
  static obs::Counter& requests =
      obs::Registry::global().counter("service.requests");
  static obs::Counter& errors =
      obs::Registry::global().counter("service.errors");
  static obs::Counter& trace_events =
      obs::Registry::global().counter("service.trace_events");
  static obs::Gauge& inflight =
      obs::Registry::global().gauge("service.inflight");

  if (line.empty()) return;
  requests.add(1);
  ParsedRequest parsed = parse_request(line);
  if (!parsed.request.has_value()) {
    errors.add(1);
    if (!write_line(fd, std::move(JsonObject()
                                      .field("id", std::uint64_t{0})
                                      .field("event", "error")
                                      .field("kind", "BadRequest")
                                      .field("message", parsed.error))
                            .str())) {
      *failed = 1;
    }
    return;
  }
  const Request& req = *parsed.request;
  capture_line(std::move(JsonObject()
                             .field("capture", "request")
                             .field("conn", conn_id)
                             .field("id", req.id)
                             .field("op", req.op))
                   .str());
  inflight.set(inflight_.fetch_add(1, std::memory_order_relaxed) + 1);

  std::uint64_t seq = 0;
  ExecOptions opts;
  if (req.deadline_ms != 0) {
    opts.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(req.deadline_ms);
  }
  opts.capture_record = !opts_.json_path.empty() || opts_.print_trace;
  opts.sink = [&](const obs::TraceEvent& event) {
    ++seq;
    trace_events.add(1);
    const std::string body = obs::trace_event_json(event);
    if (req.trace && *failed == 0) {
      std::string response = std::move(JsonObject()
                                           .field("id", req.id)
                                           .field("event", "trace")
                                           .field("seq", seq)
                                           .raw("trace", "{" + body + "}"))
                                 .str();
      if (!write_line(fd, response)) *failed = 1;
    }
    if (capture_.is_open()) {
      std::string captured;
      captured.reserve(body.size() + 64);
      captured += "{\"capture\":\"event\",\"conn\":";
      captured += std::to_string(conn_id);
      captured += ",\"id\":";
      captured += std::to_string(req.id);
      captured += ",\"seq\":";
      captured += std::to_string(seq);
      captured += ',';
      captured += body;
      captured += '}';
      capture_line(captured);
    }
  };

  const auto started = std::chrono::steady_clock::now();
  ExecResult result = execute(req, opts, opts_.limits);
  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  inflight.set(inflight_.fetch_sub(1, std::memory_order_relaxed) - 1);

  std::string response;
  if (result.ok) {
    served_.fetch_add(1, std::memory_order_relaxed);
    // The metrics array is the request's own deltas (job overlay) — wall
    // time deliberately stays out of it so the payload is deterministic.
    response = std::move(JsonObject()
                             .field("id", req.id)
                             .field("event", "result")
                             .field("ok", true)
                             .field("op", req.op)
                             .field("rounds", result.rounds)
                             .field("words", result.words)
                             .raw("metrics", result.metrics_json)
                             .raw("answer", result.answer_json))
                   .str();
  } else {
    errors.add(1);
    response = std::move(JsonObject()
                             .field("id", req.id)
                             .field("event", "error")
                             .field("kind", result.error_kind)
                             .field("message", result.error_message)
                             .field("op", req.op))
                   .str();
  }
  if (*failed == 0 && !write_line(fd, response)) *failed = 1;
  // wall_ns lives only in the server-side capture (trace_replay's
  // --percentiles input), never in client-visible result events.
  capture_line(std::move(JsonObject()
                             .field("capture", "done")
                             .field("conn", conn_id)
                             .field("id", req.id)
                             .field("op", req.op)
                             .field("ok", result.ok)
                             .field("kind", result.error_kind)
                             .field("rounds", result.rounds)
                             .field("words", result.words)
                             .field("wall_ns", wall_ns))
                   .str());
  if (result.record.has_value()) {
    if (opts_.print_trace && result.record->traced) {
      obs::span_tree_table(result.record->spans)
          .print(std::cout, "trace: conn=" + std::to_string(conn_id) +
                                " id=" + std::to_string(req.id) + " " +
                                req.op);
    }
    if (!opts_.json_path.empty()) {
      std::lock_guard<std::mutex> lock(report_mutex_);
      result.record->label =
          req.op + " id=" + std::to_string(req.id);
      report_.runs.push_back(std::move(*result.record));
    }
  }
}

void Server::session_loop(int fd, std::uint64_t conn_id) {
  static obs::Counter& oversized =
      obs::Registry::global().counter("service.oversized");
  write_line(fd, std::move(JsonObject()
                               .field("event", "hello")
                               .field("service", "mpcstabd")
                               .field("max_request_bytes",
                                      static_cast<std::uint64_t>(
                                          opts_.max_line_bytes))
                               .field("conn", conn_id))
                     .str());
  std::string buffer;
  std::uint64_t failed = 0;
  bool discarding = false;  // inside an oversized line, already reported
  bool eof = false;
  const auto reject_oversized = [&] {
    oversized.add(1);
    if (!write_line(
            fd, std::move(JsonObject()
                              .field("id", std::uint64_t{0})
                              .field("event", "error")
                              .field("kind", "Oversized")
                              .field("message",
                                     "request exceeds max_request_bytes=" +
                                         std::to_string(
                                             opts_.max_line_bytes)))
                    .str())) {
      failed = 1;
    }
  };
  while (failed == 0 && !eof) {
    // Drain every complete line currently buffered.
    std::size_t newline;
    while (failed == 0 && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (discarding) {
        discarding = false;  // tail of a line already rejected as oversized
        continue;
      }
      if (line.size() > opts_.max_line_bytes) {
        // A complete line over the cap (it can arrive whole when the cap is
        // smaller than the read chunking).
        reject_oversized();
        continue;
      }
      handle_line(fd, conn_id, &failed, line);
      if (draining()) break;
    }
    if (draining() || failed != 0) break;
    // Request-size admission: reject a line the moment it exceeds the cap,
    // without buffering it further. The connection stays usable.
    if (!discarding && buffer.size() > opts_.max_line_bytes) {
      reject_oversized();
      if (failed != 0) break;
      discarding = true;
      buffer.clear();
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout/EINTR: re-check drain
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      failed = 1;
    } else if (n == 0) {
      eof = true;
      // A well-formed client ends every request with '\n'; accept a final
      // unterminated line anyway.
      if (!buffer.empty() && buffer.back() != '\n') buffer += '\n';
      std::size_t pos;
      while (failed == 0 && !draining() &&
             (pos = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (discarding) {
          discarding = false;
          continue;
        }
        handle_line(fd, conn_id, &failed, line);
      }
    } else {
      if (discarding) {
        // Keep only what follows the oversized line's newline, if present.
        const char* begin = chunk;
        const char* end = chunk + n;
        const char* nl = std::find(begin, end, '\n');
        if (nl != end) {
          buffer.assign(nl + 1, end);
          discarding = false;
        }
      } else {
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
    }
  }
  if (failed == 0) {
    write_line(fd, std::move(JsonObject()
                                 .field("event", "bye")
                                 .field("draining", draining()))
                       .str());
  }
  ::close(fd);
}

}  // namespace mpcstab::service
