#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <utility>

#include "obs/registry.h"

namespace mpcstab::service {

namespace {

constexpr int kPollMs = 100;  ///< drain-flag check cadence for blocked I/O

/// Writes `line` + '\n' fully; MSG_NOSIGNAL so a vanished client surfaces
/// as an error return, not SIGPIPE.
bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int open_unix_listener(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "unix socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    *error = "bind/listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int open_tcp_listener(std::uint16_t port, std::uint16_t* bound,
                      std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    *error = "bind/listen 127.0.0.1:" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    *bound = ntohs(actual.sin_port);
  }
  return fd;
}

/// Writes `data` fully; MSG_NOSIGNAL so a vanished scraper surfaces as an
/// error return, not SIGPIPE.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One metrics-plane HTTP exchange: read the request head (bounded, with a
/// short overall patience so a stalled scraper cannot wedge the plane),
/// answer GET /metrics | /statusz, close. HTTP/1.0-style: Connection:
/// close on every response, no keep-alive — scrapes are one-shot.
void serve_metrics_connection(int client) {
  std::string head;
  constexpr std::size_t kMaxHead = 8192;
  for (int spins = 0; spins < 20; ++spins) {  // <= ~2s of patience
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos || head.size() >= kMaxHead) {
      break;
    }
    pollfd pfd{client, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    char chunk[1024];
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    head.append(chunk, static_cast<std::size_t>(n));
  }
  // Request line: METHOD SP PATH SP VERSION. Query strings are ignored.
  std::string method;
  std::string path;
  {
    const std::size_t eol = head.find_first_of("\r\n");
    const std::string line =
        eol == std::string::npos ? head : head.substr(0, eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos) {
      method = line.substr(0, sp1);
      path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                      : line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
    if (const std::size_t q = path.find('?'); q != std::string::npos) {
      path.resize(q);
    }
  }
  const char* status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "only GET is served here\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::prometheus_text();
  } else if (path == "/statusz") {
    content_type = "application/json";
    body = statusz_json();
    body += '\n';
  } else {
    status = "404 Not Found";
    body = "try /metrics or /statusz\n";
  }
  std::string response = "HTTP/1.1 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  write_all(client, response);
  ::close(client);
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  report_.bench = "mpcstabd";
}

Server::~Server() {
  begin_drain();
  wait();
}

bool Server::start(std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  if (opts_.unix_path.empty() && !opts_.listen_tcp) {
    *error = "no listener configured (need a unix path or TCP)";
    return false;
  }
  if (!opts_.unix_path.empty()) {
    unix_fd_ = open_unix_listener(opts_.unix_path, error);
    if (unix_fd_ < 0) return false;
  }
  if (opts_.listen_tcp) {
    tcp_fd_ = open_tcp_listener(opts_.tcp_port, &tcp_port_, error);
    if (tcp_fd_ < 0) {
      if (unix_fd_ >= 0) ::close(unix_fd_);
      unix_fd_ = -1;
      return false;
    }
  }
  if (opts_.metrics_http) {
    metrics_fd_ = open_tcp_listener(opts_.metrics_http_port, &metrics_port_,
                                    error);
    if (metrics_fd_ < 0) {
      if (unix_fd_ >= 0) ::close(unix_fd_);
      if (tcp_fd_ >= 0) ::close(tcp_fd_);
      unix_fd_ = tcp_fd_ = -1;
      return false;
    }
  }
  if (!opts_.trace_path.empty()) {
    capture_.open(opts_.trace_path, std::ios::out | std::ios::trunc);
    if (!capture_) {
      *error = "cannot open trace file " + opts_.trace_path;
      if (unix_fd_ >= 0) ::close(unix_fd_);
      if (tcp_fd_ >= 0) ::close(tcp_fd_);
      if (metrics_fd_ >= 0) ::close(metrics_fd_);
      unix_fd_ = tcp_fd_ = metrics_fd_ = -1;
      return false;
    }
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (metrics_fd_ >= 0) {
    metrics_thread_ = std::thread([this] { metrics_loop(); });
  }
  return true;
}

void Server::begin_drain() { draining_.store(true, std::memory_order_relaxed); }

void Server::wait() {
  std::lock_guard<std::mutex> guard(wait_mutex_);
  if (waited_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // Sessions can spawn only from the accept thread, so after the join the
  // vector is final.
  for (std::thread& session : sessions_) {
    if (session.joinable()) session.join();
  }
  if (capture_.is_open()) capture_.close();
  if (!opts_.json_path.empty()) {
    std::lock_guard<std::mutex> lock(report_mutex_);
    if (!obs::write_bench_json(opts_.json_path, report_)) {
      std::cerr << "mpcstabd: cannot write " << opts_.json_path << "\n";
    }
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
  waited_ = true;
}

void Server::capture_line(const std::string& line) {
  if (!capture_.is_open()) return;
  std::lock_guard<std::mutex> lock(capture_mutex_);
  capture_ << line << '\n';
  // Line-buffered on purpose: the capture must be complete even if the
  // process is killed right after a request finishes.
  capture_.flush();
}

void Server::accept_loop() {
  static obs::Counter& connections =
      obs::Registry::global().counter("service.connections");
  while (!draining()) {
    pollfd fds[2];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) fds[nfds++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = pollfd{tcp_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, kPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the drain flag
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      connections.add(1);
      const std::uint64_t conn_id =
          next_conn_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.emplace_back(
          [this, client, conn_id] { session_loop(client, conn_id); });
    }
  }
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
}

void Server::metrics_loop() {
  static obs::Counter& scrapes =
      obs::Registry::global().counter("service.metric_scrapes");
  // One scrape at a time: the exposition is cheap to render and scrapers
  // arrive at human cadence; sequential handling keeps the plane trivial.
  while (!draining()) {
    pollfd pfd{metrics_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the drain flag
    const int client = ::accept(metrics_fd_, nullptr, nullptr);
    if (client < 0) continue;
    scrapes.add(1);
    serve_metrics_connection(client);
  }
  ::close(metrics_fd_);
  metrics_fd_ = -1;
}

void Server::handle_line(int fd, std::uint64_t conn_id, std::uint64_t* failed,
                         const std::string& line) {
  static obs::Counter& requests =
      obs::Registry::global().counter("service.requests");
  static obs::Counter& errors =
      obs::Registry::global().counter("service.errors");
  static obs::Counter& trace_events =
      obs::Registry::global().counter("service.trace_events");
  static obs::Gauge& inflight =
      obs::Registry::global().gauge("service.inflight");

  if (line.empty()) return;
  requests.add(1);
  ParsedRequest parsed = parse_request(line);
  if (!parsed.request.has_value()) {
    errors.add(1);
    if (!write_line(fd, std::move(JsonObject()
                                      .field("id", std::uint64_t{0})
                                      .field("event", "error")
                                      .field("kind", "BadRequest")
                                      .field("message", parsed.error))
                            .str())) {
      *failed = 1;
    }
    return;
  }
  const Request& req = *parsed.request;
  capture_line(std::move(JsonObject()
                             .field("capture", "request")
                             .field("conn", conn_id)
                             .field("id", req.id)
                             .field("op", req.op))
                   .str());
  inflight.set(inflight_.fetch_add(1, std::memory_order_relaxed) + 1);

  std::uint64_t seq = 0;
  ExecOptions opts;
  if (req.deadline_ms != 0) {
    opts.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(req.deadline_ms);
  }
  opts.capture_record = !opts_.json_path.empty() || opts_.print_trace;
  opts.sink = [&](const obs::TraceEvent& event) {
    ++seq;
    trace_events.add(1);
    const std::string body = obs::trace_event_json(event);
    if (req.trace && *failed == 0) {
      std::string response = std::move(JsonObject()
                                           .field("id", req.id)
                                           .field("event", "trace")
                                           .field("seq", seq)
                                           .raw("trace", "{" + body + "}"))
                                 .str();
      if (!write_line(fd, response)) *failed = 1;
    }
    if (capture_.is_open()) {
      std::string captured;
      captured.reserve(body.size() + 64);
      captured += "{\"capture\":\"event\",\"conn\":";
      captured += std::to_string(conn_id);
      captured += ",\"id\":";
      captured += std::to_string(req.id);
      captured += ",\"seq\":";
      captured += std::to_string(seq);
      captured += ',';
      captured += body;
      captured += '}';
      capture_line(captured);
    }
  };

  const auto started = std::chrono::steady_clock::now();
  ExecResult result = execute(req, opts, opts_.limits);
  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  inflight.set(inflight_.fetch_sub(1, std::memory_order_relaxed) - 1);

  std::string response;
  if (result.ok) {
    served_.fetch_add(1, std::memory_order_relaxed);
    // The metrics array is the request's own deltas (job overlay) — wall
    // time deliberately stays out of it so the payload is deterministic.
    response = std::move(JsonObject()
                             .field("id", req.id)
                             .field("event", "result")
                             .field("ok", true)
                             .field("op", req.op)
                             .field("rounds", result.rounds)
                             .field("words", result.words)
                             .raw("metrics", result.metrics_json)
                             .raw("answer", result.answer_json))
                   .str();
  } else {
    errors.add(1);
    response = std::move(JsonObject()
                             .field("id", req.id)
                             .field("event", "error")
                             .field("kind", result.error_kind)
                             .field("message", result.error_message)
                             .field("op", req.op))
                   .str();
  }
  if (*failed == 0 && !write_line(fd, response)) *failed = 1;
  // wall_ns lives only in the server-side capture (trace_replay's
  // --percentiles input), never in client-visible result events.
  capture_line(std::move(JsonObject()
                             .field("capture", "done")
                             .field("conn", conn_id)
                             .field("id", req.id)
                             .field("op", req.op)
                             .field("ok", result.ok)
                             .field("kind", result.error_kind)
                             .field("rounds", result.rounds)
                             .field("words", result.words)
                             .field("wall_ns", wall_ns))
                   .str());
  if (result.record.has_value()) {
    if (opts_.print_trace && result.record->traced) {
      obs::span_tree_table(result.record->spans)
          .print(std::cout, "trace: conn=" + std::to_string(conn_id) +
                                " id=" + std::to_string(req.id) + " " +
                                req.op);
    }
    if (!opts_.json_path.empty()) {
      std::lock_guard<std::mutex> lock(report_mutex_);
      result.record->label =
          req.op + " id=" + std::to_string(req.id);
      report_.runs.push_back(std::move(*result.record));
    }
  }
}

void Server::session_loop(int fd, std::uint64_t conn_id) {
  static obs::Counter& oversized =
      obs::Registry::global().counter("service.oversized");
  write_line(fd, std::move(JsonObject()
                               .field("event", "hello")
                               .field("service", "mpcstabd")
                               .field("max_request_bytes",
                                      static_cast<std::uint64_t>(
                                          opts_.max_line_bytes))
                               .field("conn", conn_id))
                     .str());
  std::string buffer;
  std::uint64_t failed = 0;
  bool discarding = false;  // inside an oversized line, already reported
  bool eof = false;
  const auto reject_oversized = [&] {
    oversized.add(1);
    if (!write_line(
            fd, std::move(JsonObject()
                              .field("id", std::uint64_t{0})
                              .field("event", "error")
                              .field("kind", "Oversized")
                              .field("message",
                                     "request exceeds max_request_bytes=" +
                                         std::to_string(
                                             opts_.max_line_bytes)))
                    .str())) {
      failed = 1;
    }
  };
  while (failed == 0 && !eof) {
    // Drain every complete line currently buffered.
    std::size_t newline;
    while (failed == 0 && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (discarding) {
        discarding = false;  // tail of a line already rejected as oversized
        continue;
      }
      if (line.size() > opts_.max_line_bytes) {
        // A complete line over the cap (it can arrive whole when the cap is
        // smaller than the read chunking).
        reject_oversized();
        continue;
      }
      handle_line(fd, conn_id, &failed, line);
      if (draining()) break;
    }
    if (draining() || failed != 0) break;
    // Request-size admission: reject a line the moment it exceeds the cap,
    // without buffering it further. The connection stays usable.
    if (!discarding && buffer.size() > opts_.max_line_bytes) {
      reject_oversized();
      if (failed != 0) break;
      discarding = true;
      buffer.clear();
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout/EINTR: re-check drain
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      failed = 1;
    } else if (n == 0) {
      eof = true;
      // A well-formed client ends every request with '\n'; accept a final
      // unterminated line anyway.
      if (!buffer.empty() && buffer.back() != '\n') buffer += '\n';
      std::size_t pos;
      while (failed == 0 && !draining() &&
             (pos = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (discarding) {
          discarding = false;
          continue;
        }
        handle_line(fd, conn_id, &failed, line);
      }
    } else {
      if (discarding) {
        // Keep only what follows the oversized line's newline, if present.
        const char* begin = chunk;
        const char* end = chunk + n;
        const char* nl = std::find(begin, end, '\n');
        if (nl != end) {
          buffer.assign(nl + 1, end);
          discarding = false;
        }
      } else {
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
    }
  }
  if (failed == 0) {
    write_line(fd, std::move(JsonObject()
                                 .field("event", "bye")
                                 .field("draining", draining()))
                       .str());
  }
  ::close(fd);
}

}  // namespace mpcstab::service
