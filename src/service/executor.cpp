#include "service/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "algorithms/coloring.h"
#include "algorithms/connectivity.h"
#include "algorithms/luby.h"
#include "core/component_stable.h"
#include "core/lifting.h"
#include "core/sensitivity.h"
#include "local/engine.h"
#include "mpc/native_connectivity.h"
#include "mpc/transport.h"
#include "native/components.h"
#include "obs/registry.h"
#include "rng/prf.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace mpcstab::service {

namespace {

/// Thrown (privately) by the deadline-checking sink; converted to the
/// structured "DeadlineExceeded" error before leaving the executor.
struct DeadlineExpired {};

bool deadline_set(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point{};
}

/// Explicit set_max_concurrent_engines override; 0 = env/default.
std::atomic<unsigned> requested_engine_limit{0};

unsigned env_engine_limit() {
  static const unsigned parsed = [] {
    const char* raw = std::getenv("MPCSTAB_MAX_ENGINES");
    if (raw == nullptr || *raw == '\0') return 0u;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    if (end == nullptr || *end != '\0' || value == 0 || value > 256) return 0u;
    return static_cast<unsigned>(value);
  }();
  return parsed;
}

/// The admission gate: a counting semaphore bounding concurrent engine
/// jobs. Replaces the old process-wide engine lock — N admitted requests
/// run simultaneously, each on its own job-scoped pool. The limit is
/// re-read per admission so set_max_concurrent_engines takes effect
/// without draining; a queued request with a deadline gives up when it
/// expires before a slot frees.
class EngineGate {
 public:
  bool enter(std::chrono::steady_clock::time_point deadline) {
    static obs::Histogram& queue_wait =
        obs::Registry::global().histogram("engine.queue_wait_ns");
    static obs::Gauge& concurrency =
        obs::Registry::global().gauge("engine.concurrency");
    static obs::Counter& admitted =
        obs::Registry::global().counter("engine.admitted");
    static obs::Counter& timeouts =
        obs::Registry::global().counter("engine.queue_timeouts");
    const auto queued = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    const auto admissible = [this] {
      return active_ < max_concurrent_engines();
    };
    if (deadline_set(deadline)) {
      if (!slot_free_.wait_until(lock, deadline, admissible)) {
        timeouts.add(1);
        return false;
      }
    } else {
      slot_free_.wait(lock, admissible);
    }
    ++active_;
    concurrency.set(active_);
    admitted.add(1);
    queue_wait.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - queued)
            .count()));
    return true;
  }

  void exit() {
    static obs::Gauge& concurrency =
        obs::Registry::global().gauge("engine.concurrency");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (active_ > 0) --active_;
      concurrency.set(active_);
    }
    slot_free_.notify_one();
  }

  unsigned active() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return active_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable slot_free_;
  unsigned active_ = 0;
};

EngineGate& engine_gate() {
  static EngineGate gate;
  return gate;
}

/// RAII gate slot so every exit path (including throws) releases it.
struct GateSlot {
  ~GateSlot() { engine_gate().exit(); }
};

/// hash-to-min on cycles/paths converges in O(log n); this budget leaves
/// generous headroom while keeping runaway requests bounded.
std::uint64_t iteration_budget(std::uint64_t n) {
  std::uint64_t bits = 1;
  while ((1ull << bits) < n && bits < 63) ++bits;
  return 2 * bits + 8;
}

/// Live in-flight-job directory backing the statusz "jobs" rows. Entries
/// point at overlay registries living on execute_on stack frames; the
/// registration RAII below removes an entry (under the mutex) before its
/// overlay is destroyed, and statusz_json snapshots overlays while holding
/// the mutex, so a snapshot can never race an overlay's destruction.
struct JobEntry {
  std::uint64_t id = 0;   ///< admission serial (monotone, process-wide)
  std::string op;
  const obs::Registry* overlay = nullptr;
};

struct JobDirectory {
  std::mutex mutex;
  std::vector<JobEntry> jobs;  ///< admission order
  std::uint64_t next_id = 1;
};

JobDirectory& job_directory() {
  static JobDirectory directory;
  return directory;
}

/// Registers one in-flight request for the statusz job listing. Disabled
/// for the introspection ops themselves (ping, statusz) — they are not
/// engine work and would only clutter the listing.
class JobRegistration {
 public:
  JobRegistration(const std::string& op, const obs::Registry* overlay,
                  bool enabled) {
    if (!enabled) return;
    JobDirectory& dir = job_directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    id_ = dir.next_id++;
    dir.jobs.push_back(JobEntry{id_, op, overlay});
  }
  ~JobRegistration() {
    if (id_ == 0) return;
    JobDirectory& dir = job_directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    std::erase_if(dir.jobs,
                  [this](const JobEntry& e) { return e.id == id_; });
  }
  JobRegistration(const JobRegistration&) = delete;
  JobRegistration& operator=(const JobRegistration&) = delete;

 private:
  std::uint64_t id_ = 0;
};

std::string run_connectivity(Cluster& cluster, const LegalGraph& g,
                             const Request& req) {
  ConnectivityResult result;
  for (std::uint32_t r = 0; r < req.repeat; ++r) {
    result = hash_to_min_components(cluster, g, iteration_budget(g.n()));
  }
  const std::set<Node> distinct(result.labels.begin(), result.labels.end());
  return std::move(JsonObject()
                       .field("components",
                              static_cast<std::uint64_t>(distinct.size()))
                       .field("converged", result.converged)
                       .field("iterations", result.iterations))
      .str();
}

/// The in-model ground-truth tier: min-label propagation with every label
/// movement paid through Cluster::exchange (mpc/native_connectivity.h) —
/// the one service op whose result event reflects real wave traffic, so
/// it is what the transport A/B smoke byte-compares across backends.
std::string run_connectivity_mpc_native(Cluster& cluster,
                                        const LegalGraph& g,
                                        const Request& req) {
  NativeConnectivityResult result;
  for (std::uint32_t r = 0; r < req.repeat; ++r) {
    // Min-label propagation moves a label one hop per iteration, so unlike
    // hash-to-min's O(log n) doubling it needs a diameter-safe budget: a
    // component's minimum reaches every vertex within n-1 hops and the run
    // exits early the iteration nothing changes (n is already bounded by
    // the max_nodes admission limit).
    result = native_min_label_propagation(cluster, g, g.n() + 1);
  }
  const std::set<Node> distinct(result.labels.begin(), result.labels.end());
  return std::move(JsonObject()
                       .field("components",
                              static_cast<std::uint64_t>(distinct.size()))
                       .field("converged", result.converged)
                       .field("iterations", result.iterations)
                       .field("backend", "mpc-native"))
      .str();
}

/// The lock-free speed tier (DESIGN.md "Backend tiers"): answers on shared
/// memory via the job's worker pool, touches the cluster not at all — the
/// result event's "rounds"/"words" stay 0 by construction. The answer
/// schema matches the MPC backend's (components/converged/iterations) plus
/// a "backend" marker; component counts are bit-identical to the engine's
/// (the differential oracle gates exactly this). The native.* effort
/// metrics attribute to this request through the job overlay.
std::string run_connectivity_native(const LegalGraph& g, const Request& req) {
  native::NativeComponentsResult result;
  for (std::uint32_t r = 0; r < req.repeat; ++r) {
    result = native::components_native(g.graph());
  }
  return std::move(
             JsonObject()
                 .field("components", static_cast<std::uint64_t>(result.count))
                 .field("converged", true)
                 .field("iterations", result.compress_passes)
                 .field("backend", "native"))
      .str();
}

std::string run_coloring(Cluster& cluster, const LegalGraph& g,
                         const Request& req) {
  const std::uint64_t palette =
      req.palette != 0 ? req.palette
                       : static_cast<std::uint64_t>(g.max_degree()) + 1;
  require(palette > g.max_degree(), "palette must exceed the max degree");
  DerandColoringResult result;
  for (std::uint32_t r = 0; r < req.repeat; ++r) {
    result = derandomized_coloring(cluster, g, palette, /*seed_bits=*/8);
  }
  bool proper = true;
  for (const Edge& e : g.graph().edges()) {
    proper = proper && result.colors[e.u] != result.colors[e.v];
  }
  return std::move(JsonObject()
                       .field("palette", result.palette)
                       .field("iterations", result.iterations)
                       .field("proper", proper))
      .str();
}

std::string run_mis(Cluster& cluster, const LegalGraph& g,
                    const Request& req) {
  MisResult result;
  for (std::uint32_t r = 0; r < req.repeat; ++r) {
    SyncNetwork net = SyncNetwork::on_cluster(cluster, g, Prf(req.seed));
    result = luby_mis(net, /*stream=*/r);
  }
  std::uint64_t in_set = 0;
  bool independent = true;
  for (Node v = 0; v < g.n(); ++v) {
    if (result.labels[v] != kLabelIn) continue;
    ++in_set;
    for (const Node u : g.graph().neighbors(v)) {
      independent = independent && result.labels[u] != kLabelIn;
    }
  }
  return std::move(JsonObject()
                       .field("in_set", in_set)
                       .field("iterations", result.iterations)
                       .field("independent", independent))
      .str();
}

std::string run_lifting(Cluster& cluster, const LegalGraph& g,
                        const Request& req) {
  constexpr NodeId kMarkerId = 999;
  const SensitivePair pair =
      path_marker_pair(2 * req.radius + 1, req.radius, kMarkerId);
  const MarkerAlgorithm alg({kMarkerId});
  const Node t = req.t_set ? req.t : static_cast<Node>(g.n() - 1);
  BStConnResult result;
  for (std::uint32_t r = 0; r < req.repeat; ++r) {
    result = b_st_conn(cluster, g, req.s, t, pair, alg, req.seed,
                       req.simulations, /*planted_first=*/true);
  }
  return std::move(JsonObject()
                       .field("yes", result.yes)
                       .field("yes_votes", result.yes_votes)
                       .field("simulations", result.simulations_run)
                       .field("full_copies", result.full_copies_seen))
      .str();
}

std::string run_sensitivity(const Request& req) {
  constexpr NodeId kMarkerId = 999;
  const SensitivePair pair =
      path_marker_pair(2 * req.radius + 1, req.radius, kMarkerId);
  const MarkerAlgorithm alg({kMarkerId});
  std::vector<std::uint64_t> seeds(req.seeds);
  for (std::uint64_t i = 0; i < req.seeds; ++i) seeds[i] = req.seed + i;
  double sensitivity = 0.0;
  for (std::uint32_t r = 0; r < req.repeat; ++r) {
    sensitivity = measure_sensitivity(alg, pair, /*n_param=*/200,
                                      /*delta=*/2, seeds);
  }
  return std::move(JsonObject()
                       .field("sensitivity", sensitivity)
                       .field("radius", static_cast<std::uint64_t>(req.radius))
                       .field("seeds", req.seeds))
      .str();
}

}  // namespace

unsigned max_concurrent_engines() {
  const unsigned requested =
      requested_engine_limit.load(std::memory_order_relaxed);
  if (requested != 0) return requested;
  if (const unsigned from_env = env_engine_limit(); from_env != 0) {
    return from_env;
  }
  return std::min(4u, global_threads());
}

void set_max_concurrent_engines(unsigned limit) {
  requested_engine_limit.store(limit, std::memory_order_relaxed);
}

unsigned engine_jobs_active() { return engine_gate().active(); }

bool engine_saturated() {
  return engine_jobs_active() >= max_concurrent_engines();
}

std::string statusz_json() {
  std::string jobs = "[";
  {
    JobDirectory& dir = job_directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    bool first = true;
    for (const JobEntry& entry : dir.jobs) {
      if (!first) jobs += ',';
      first = false;
      jobs += std::move(
                  JsonObject()
                      .field("job", entry.id)
                      .field("op", entry.op)
                      .raw("metrics",
                           obs::metrics_json_array(entry.overlay->snapshot())))
                  .str();
    }
  }
  jobs += ']';
  return std::move(
             JsonObject()
                 .field("transport", std::string(transport_name()))
                 .field("transport_workers",
                        static_cast<std::uint64_t>(transport_workers()))
                 .raw("metrics", obs::metrics_json_array(
                                     obs::Registry::global().snapshot()))
                 .raw("jobs", jobs))
      .str();
}

ExecResult execute_on(Cluster& cluster, const LegalGraph& g,
                      const Request& req, const ExecOptions& opts) {
  ExecResult out;
  out.answer_json = "{}";
  obs::Tracer& tracer = cluster.enable_tracing();
  const std::uint64_t rounds0 = cluster.rounds();
  const std::uint64_t words0 = cluster.words_moved();
  // Per-request attribution: every Scoped* instrument write during this
  // request (orchestration thread and pool workers alike) lands in this
  // overlay as well as in the global registry. Declaration order matters —
  // the scope unbinds and the directory entry is removed before the overlay
  // is destroyed.
  obs::Registry job_metrics;
  const JobRegistration registration(
      req.op, &job_metrics,
      /*enabled=*/req.op != "ping" && req.op != "statusz");
  const obs::RegistryScope attribution(&job_metrics);
  // Deadline checks piggyback on trace events: every exchange and charge
  // passes through here on the orchestration thread. Span-end events are
  // exempt — they fire from Span destructors, which must not throw.
  tracer.set_sink([&opts](const obs::TraceEvent& event) {
    if (opts.sink) opts.sink(event);
    if (event.kind != obs::TraceEvent::Kind::kSpanEnd &&
        deadline_set(opts.deadline) &&
        std::chrono::steady_clock::now() > opts.deadline) {
      throw DeadlineExpired{};
    }
  });
  try {
    if (deadline_set(opts.deadline) &&
        std::chrono::steady_clock::now() > opts.deadline) {
      throw DeadlineExpired{};
    }
    {
      obs::Span phase = cluster.span(req.op);
      if (req.op == "ping") {
        out.answer_json = std::move(JsonObject().field("pong", true)).str();
      } else if (req.op == "statusz") {
        out.answer_json = statusz_json();
      } else if (req.op == "connectivity" && req.backend == "mpc-native") {
        out.answer_json = run_connectivity_mpc_native(cluster, g, req);
      } else if (req.op == "connectivity" && req.backend == "native") {
        out.answer_json = run_connectivity_native(g, req);
      } else if (req.op == "connectivity") {
        out.answer_json = run_connectivity(cluster, g, req);
      } else if (req.op == "coloring") {
        out.answer_json = run_coloring(cluster, g, req);
      } else if (req.op == "mis") {
        out.answer_json = run_mis(cluster, g, req);
      } else if (req.op == "lifting") {
        out.answer_json = run_lifting(cluster, g, req);
      } else if (req.op == "sensitivity") {
        out.answer_json = run_sensitivity(req);
      } else {
        require(false, "unknown op \"" + req.op + "\"");
      }
    }
    out.ok = true;
  } catch (const DeadlineExpired&) {
    out.error_kind = "DeadlineExceeded";
    out.error_message = "request deadline expired after " +
                        std::to_string(req.deadline_ms) + "ms";
  } catch (const SpaceLimitError& e) {
    out.error_kind = "SpaceLimitError";
    out.error_message = e.what();
  } catch (const PreconditionError& e) {
    out.error_kind = "BadRequest";
    out.error_message = e.what();
  } catch (const Error& e) {
    out.error_kind = "Error";
    out.error_message = e.what();
  } catch (const TransportError& e) {
    // Exchange-substrate failure (proc worker death, wire timeout): an
    // infrastructure fault, not a request or model violation — surfaced
    // under the generic internal kind but with the transport's message
    // (worker, pid, wave index) intact for the operator.
    out.error_kind = "InternalError";
    out.error_message = e.what();
  } catch (const std::exception& e) {
    out.error_kind = "InternalError";
    out.error_message = e.what();
  }
  tracer.set_sink({});
  out.rounds = cluster.rounds() - rounds0;
  out.words = cluster.words_moved() - words0;
  // Serialized even for failed runs (partial deltas are still honest
  // attribution); result events only forward it for successes.
  out.metrics_json = obs::metrics_json_array(job_metrics.snapshot());
  if (opts.capture_record && out.ok) {
    // An aborted run can leave spans open, so records are success-only.
    out.record = obs::capture_run(req.op, cluster);
  }
  return out;
}

ExecResult execute(const Request& req, const ExecOptions& opts,
                   const AdmissionLimits& limits) {
  ExecResult out;
  out.answer_json = "{}";
  // Graph-free ops skip the engine entirely (and the admission gate):
  // statusz must answer even while long requests hold every engine slot.
  if (req.op == "ping" || req.op == "statusz" || req.op == "sensitivity") {
    MpcConfig cfg;
    cfg.n = 2;
    cfg.local_space = 8;
    cfg.machines = 1;
    Cluster scratch(cfg);
    const LegalGraph empty = LegalGraph::with_identity(Graph(1));
    return execute_on(scratch, empty, req, opts);
  }
  Graph topology;
  try {
    topology = build_graph(req.graph);
  } catch (const Error& e) {
    out.error_kind = "BadRequest";
    out.error_message = e.what();
    return out;
  }
  if (topology.n() > limits.max_nodes) {
    out.error_kind = "AdmissionDenied";
    out.error_message = "graph has " + std::to_string(topology.n()) +
                        " nodes; limit is " + std::to_string(limits.max_nodes);
    return out;
  }
  MpcConfig config;
  try {
    config = resolve_config(req, topology.n(), topology.m());
  } catch (const Error& e) {
    out.error_kind = "BadRequest";
    out.error_message = e.what();
    return out;
  }
  if (config.machines > limits.max_machines) {
    out.error_kind = "AdmissionDenied";
    out.error_message =
        "deployment needs " + std::to_string(config.machines) +
        " machines; limit is " + std::to_string(limits.max_machines);
    return out;
  }
  if (!engine_gate().enter(opts.deadline)) {
    out.error_kind = "DeadlineExceeded";
    out.error_message = "deadline expired while queued for the engine";
    return out;
  }
  const GateSlot slot;
  // Each admitted request drives its own job-scoped pool: a fair share of
  // the process thread budget, bound to the cluster so every engine phase
  // (exchanges, batching, lifting simulations) resolves it — never the
  // shared default pool another request might be using.
  const PoolHandle pool = acquire_job_pool();
  const PoolScope scope(pool.get());
  const LegalGraph g = LegalGraph::with_identity(std::move(topology));
  Cluster cluster(config);
  cluster.set_pool(pool);
  // Engine wall time stays process-only (observed after the request's
  // overlay is gone): wall-clock in per-request metrics would break the
  // serial-vs-concurrent bit-identity contract.
  static obs::Histogram& run_ns =
      obs::Registry::global().histogram("engine.run_ns");
  const auto engine_started = std::chrono::steady_clock::now();
  ExecResult result = execute_on(cluster, g, req, opts);
  run_ns.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - engine_started)
          .count()));
  return result;
}

}  // namespace mpcstab::service
