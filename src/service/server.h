// The mpcstabd server: accepts newline-delimited JSON requests over a
// Unix-domain and/or loopback TCP socket, executes them through
// service::execute (concurrent engine runs behind a counting admission
// gate; see executor.h) and streams per-request NDJSON responses — and,
// when requested, live trace events — back to each client. An optional
// third listener serves the HTTP/1.1 gateway (service/gateway.h):
// POST /v1/query through the content-addressed result cache, plus the
// /metrics, /statusz and /healthz planes that used to live on a serial
// single-connection metrics loop.
//
// Threading model: one accept thread plus one thread per connection —
// NDJSON sessions and HTTP exchanges alike come off the same accept loop
// into the same reaped session pool, so a stalled HTTP scraper stalls only
// its own thread. Finished sessions are reaped (joined and dropped) on
// every subsequent accept, so a long-lived daemon's session table stays
// bounded by its *concurrent* connection count, not its lifetime total.
// Up to max_concurrent_engines() requests drive the engine simultaneously,
// each on its own job-scoped worker pool (requests beyond the limit queue
// at the executor's admission gate). A shared capture file
// (ServerOptions::trace_path) receives every request's trace events as
// NDJSON, interleaved across connections but sequenced per request (`seq`
// is per-request monotone), which is what CI uploads as the service-smoke
// artifact.
//
// Shutdown: begin_drain() stops accepting, lets in-flight requests finish
// (their results are still delivered), sends each client a {"event":"bye"}
// line and closes. wait() blocks until every thread is joined and the
// capture/report files are flushed — the SIGTERM path in tools/mpcstabd is
// exactly begin_drain() + wait().
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/export.h"
#include "service/executor.h"
#include "service/gateway.h"

namespace mpcstab::service {

struct ServerOptions {
  std::string unix_path;          ///< "" = no Unix-domain listener
  bool listen_tcp = false;        ///< listen on 127.0.0.1
  std::uint16_t tcp_port = 0;     ///< 0 = ephemeral (read back via tcp_port())
  std::string trace_path;         ///< server-side NDJSON capture ("" = off)
  std::size_t max_line_bytes = 1 << 20;  ///< request-size admission limit
  AdmissionLimits limits;
  std::string json_path;          ///< mpcstab-bench-v1 report at shutdown
  bool print_trace = false;       ///< print each request's span tree
  /// Serve the HTTP/1.1 gateway on 127.0.0.1: POST /v1/query through the
  /// content-addressed result cache plus GET /metrics, /statusz and
  /// /healthz (service/gateway.h). Engine requests may use either plane;
  /// the NDJSON sockets remain the streaming-trace path.
  bool http = false;
  std::uint16_t http_port = 0;    ///< 0 = ephemeral (read back via http_port())
  GatewayOptions gateway;         ///< cache budget, shed threshold, ...
                                  ///< (gateway.limits is overwritten by
                                  ///< `limits` so the planes agree)
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the listeners and starts the accept thread. False (with *error
  /// set) when no listener could be opened.
  bool start(std::string* error);

  /// Actual TCP port (after an ephemeral bind); 0 when TCP is off.
  std::uint16_t tcp_port() const { return tcp_port_; }

  /// Actual gateway HTTP port; 0 when the HTTP plane is off.
  std::uint16_t http_port() const { return http_port_; }

  /// Stops accepting; in-flight requests run to completion. Idempotent and
  /// async-signal-unsafe (call from a normal thread, not a handler).
  void begin_drain();

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Joins the accept and session threads, writes the shutdown report and
  /// closes the capture file. Returns once fully drained. Idempotent.
  void wait();

  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Session slots currently held (running sessions plus any finished ones
  /// not yet reaped); reaps before counting. The regression handle for the
  /// bounded-session-table contract.
  std::size_t live_sessions();

 private:
  /// One connection's thread plus its completion flag. The flag (set as
  /// the session body's last action) marks the thread joinable-without-
  /// blocking, which is what makes opportunistic reaping safe: join() is
  /// only called on slots whose work has already finished.
  struct SessionSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void spawn_session_locked(std::function<void()> body);
  void reap_finished_locked();
  void session_loop(int fd, std::uint64_t conn_id);
  void http_session_loop(int fd, std::uint64_t conn_id);
  void handle_line(int fd, std::uint64_t conn_id, std::uint64_t* failed,
                   const std::string& line);
  void capture_line(const std::string& line);

  ServerOptions opts_;
  std::unique_ptr<Gateway> gateway_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int http_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  std::uint16_t http_port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> next_conn_{0};
  std::atomic<std::uint64_t> inflight_{0};

  std::thread accept_thread_;
  std::mutex sessions_mutex_;
  std::list<SessionSlot> sessions_;

  std::mutex capture_mutex_;
  std::ofstream capture_;

  std::mutex report_mutex_;
  obs::BenchReport report_;

  bool waited_ = false;
  std::mutex wait_mutex_;
};

}  // namespace mpcstab::service
