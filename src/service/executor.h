// Request execution for the mpcstabd service: one parsed Request in, one
// structured result out, with trace events streamed through a caller sink.
//
// Concurrency contract: the worker pool behind Cluster::exchange is a
// single-job fork-join pool (support/thread_pool.h) — two threads calling
// parallel_for concurrently would corrupt its one-job state. The service
// therefore serializes *engine* execution behind a process-wide engine
// lock: sessions parse, admit and stream concurrently, but at most one
// request drives the Cluster at a time (its internal parallelism still
// comes from the pool). `execute` takes the lock; `execute_on` does not
// (single-threaded callers — benches, tests — that own the cluster).
//
// Deadlines are enforced cooperatively through the tracer's event sink:
// every exchange/charge checks the deadline, so a deadline expiry surfaces
// between rounds as a structured "DeadlineExceeded" error, never mid-round.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "graph/legal_graph.h"
#include "mpc/cluster.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "service/protocol.h"

namespace mpcstab::service {

/// Admission limits a deployment enforces before any engine work starts.
struct AdmissionLimits {
  std::uint64_t max_nodes = 1u << 20;     ///< largest admissible graph
  std::uint64_t max_machines = 1u << 22;  ///< largest admissible deployment
};

/// Execution hooks and limits for one request.
struct ExecOptions {
  /// Receives every trace event of the run (span begin/end, exchange,
  /// charge) on the orchestration thread; empty = no streaming.
  std::function<void(const obs::TraceEvent&)> sink;
  /// Absolute deadline; time_point{} (the epoch) = none.
  std::chrono::steady_clock::time_point deadline{};
  /// Capture a RunRecord of the cluster on success (daemon --json reports).
  bool capture_record = false;
};

/// Structured outcome of one request.
struct ExecResult {
  bool ok = false;
  std::string error_kind;     ///< "SpaceLimitError", "DeadlineExceeded",
                              ///< "AdmissionDenied", "BadRequest", ...
  std::string error_message;
  std::string answer_json;    ///< op-specific JSON object ("{}" when !ok)
  std::uint64_t rounds = 0;   ///< cluster rounds consumed by this request
  std::uint64_t words = 0;    ///< words moved by this request
  std::optional<obs::RunRecord> record;  ///< when capture_record && ok
};

/// Runs the op on a caller-provided cluster (tracing is enabled by this
/// call). No engine lock, no admission control — the caller is
/// single-threaded and already sized the deployment. The graph must match
/// the request (benches pass the one they built).
ExecResult execute_on(Cluster& cluster, const LegalGraph& g,
                      const Request& req, const ExecOptions& opts);

/// Full service path: builds the graph, applies admission control, resolves
/// the deployment, takes the engine lock (respecting the deadline while
/// waiting) and runs the op on a fresh traced cluster. Never throws for
/// request-induced failures — they come back as structured errors.
ExecResult execute(const Request& req, const ExecOptions& opts,
                   const AdmissionLimits& limits);

}  // namespace mpcstab::service
