// Request execution for the mpcstabd service: one parsed Request in, one
// structured result out, with trace events streamed through a caller sink.
//
// Concurrency contract: engine runs execute *concurrently*. Each admitted
// request owns its seed, graph, cluster, tracer and a job-scoped worker
// pool (support/thread_pool.h) carved out of the process thread budget, so
// per-request accounting is bit-identical to a serial run. A counting
// admission gate bounds how many engine jobs run at once
// (`max_concurrent_engines`, default min(4, global_threads()), overridable
// via MPCSTAB_MAX_ENGINES or set_max_concurrent_engines); requests beyond
// the limit queue at the gate, and a queued request with a deadline gives
// up with "DeadlineExceeded" when it expires before admission. `execute`
// passes the gate and acquires the job pool; `execute_on` does neither
// (callers — benches, tests — that own the cluster and its threading).
//
// Deadlines are enforced cooperatively through the tracer's event sink:
// every exchange/charge checks the deadline, so a deadline expiry surfaces
// between rounds as a structured "DeadlineExceeded" error, never mid-round.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "graph/legal_graph.h"
#include "mpc/cluster.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "service/protocol.h"

namespace mpcstab::service {

/// Admission limits a deployment enforces before any engine work starts.
struct AdmissionLimits {
  std::uint64_t max_nodes = 1u << 20;     ///< largest admissible graph
  std::uint64_t max_machines = 1u << 22;  ///< largest admissible deployment
};

/// Execution hooks and limits for one request.
struct ExecOptions {
  /// Receives every trace event of the run (span begin/end, exchange,
  /// charge) on the orchestration thread; empty = no streaming.
  std::function<void(const obs::TraceEvent&)> sink;
  /// Absolute deadline; time_point{} (the epoch) = none.
  std::chrono::steady_clock::time_point deadline{};
  /// Capture a RunRecord of the cluster on success (daemon --json reports).
  bool capture_record = false;
};

/// Structured outcome of one request.
struct ExecResult {
  bool ok = false;
  std::string error_kind;     ///< "SpaceLimitError", "DeadlineExceeded",
                              ///< "AdmissionDenied", "BadRequest", ...
  std::string error_message;
  std::string answer_json;    ///< op-specific JSON object ("{}" when !ok)
  std::uint64_t rounds = 0;   ///< cluster rounds consumed by this request
  std::uint64_t words = 0;    ///< words moved by this request
  /// JSON array of this request's own metric deltas (the job overlay
  /// registry's snapshot, obs::metrics_json_array schema). For MPC-backend
  /// requests this is deterministic: every overlaid engine instrument is
  /// schedule-independent, so the string is bit-identical whether the
  /// request ran serially or beside three others. Native-backend requests
  /// attribute *effort* metrics instead (native.cas_retries varies with
  /// CAS interleaving) — their answers stay bit-identical, their overlay
  /// does not (DESIGN.md "Backend tiers"). "[]" until execute_on runs
  /// (e.g. admission failures).
  std::string metrics_json = "[]";
  std::optional<obs::RunRecord> record;  ///< when capture_record && ok
};

/// How many engine jobs may run concurrently. Resolution order:
/// set_max_concurrent_engines override, then the MPCSTAB_MAX_ENGINES
/// environment variable, then min(4, global_threads()).
unsigned max_concurrent_engines();

/// Overrides the concurrent-engine limit (0 restores env/default
/// resolution). Takes effect for requests admitted after the call; jobs
/// already past the gate finish under the limit they were admitted with.
void set_max_concurrent_engines(unsigned limit);

/// How many engine jobs currently hold an admission slot. A point-in-time
/// read — stale by the time the caller acts on it, which is fine for its
/// consumers (load-shedding heuristics, status displays).
unsigned engine_jobs_active();

/// True when every engine admission slot is occupied — a new engine
/// request would queue at the gate. The gateway's shed decision.
bool engine_saturated();

/// Live process status as one JSON object:
///   {"metrics": [...global registry snapshot...],
///    "jobs": [{"job": <admission serial>, "op": "...",
///              "metrics": [...that job's live overlay...]}, ...]}
/// The "jobs" rows cover every engine request currently inside execute_on
/// (admission order); their counters are live reads of in-flight overlays.
/// Served as the statusz op's answer and by the daemon's /statusz endpoint.
std::string statusz_json();

/// Runs the op on a caller-provided cluster (tracing is enabled by this
/// call). No admission gate, no job pool — the caller owns the cluster's
/// threading and already sized the deployment. The graph must match the
/// request (benches pass the one they built).
ExecResult execute_on(Cluster& cluster, const LegalGraph& g,
                      const Request& req, const ExecOptions& opts);

/// Full service path: builds the graph, applies admission control, resolves
/// the deployment, passes the concurrency gate (respecting the deadline
/// while queued), acquires a job-scoped worker pool and runs the op on a
/// fresh traced cluster. Never throws for request-induced failures — they
/// come back as structured errors.
ExecResult execute(const Request& req, const ExecOptions& opts,
                   const AdmissionLimits& limits);

}  // namespace mpcstab::service
