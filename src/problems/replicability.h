// Replicability (Definition 9): the minimal restriction on problems that
// makes the lifting framework sound once component-stable algorithms are
// allowed dependency on n. A problem is R-replicable when a valid uniform
// labeling of Gamma_G (>= |V(G)|^R disjoint copies of G plus < |V(G)|
// same-ID isolated nodes) forces the per-copy labeling to be valid on G.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/legal_graph.h"
#include "problems/problems.h"

namespace mpcstab {

/// One replicability trial on a concrete (G, L, ell) triple.
struct ReplicabilityTrial {
  bool gamma_valid = false;  // L' valid on Gamma_G
  bool g_valid = false;      // L valid on G
  /// Definition 9 requires gamma_valid => g_valid; a witnessed violation is
  /// a counterexample to R-replicability.
  bool consistent() const { return !gamma_valid || g_valid; }
};

/// Builds Gamma_G with exactly max(|V|^R, min_copies) copies and `isolated`
/// (< |V|) isolated nodes, labels it with L per copy and `ell` on isolated
/// nodes, and evaluates both sides of the implication.
ReplicabilityTrial replicability_trial(const Problem& problem,
                                       const LegalGraph& g,
                                       std::span<const Label> labeling,
                                       Label isolated_label, unsigned R,
                                       std::uint64_t isolated);

/// Exhaustively searches labelings of a small graph (alphabet {out,in},
/// |V| * alphabet <= ~20 bits) for a violation of R-replicability.
/// Returns true when no violation exists over all binary labelings and all
/// isolated-node labels in {out, in}.
bool replicable_over_binary_labelings(const Problem& problem,
                                      const LegalGraph& g, unsigned R);

}  // namespace mpcstab
