#include "problems/replicability.h"

#include "graph/ops.h"
#include "support/check.h"
#include "support/math.h"

namespace mpcstab {

ReplicabilityTrial replicability_trial(const Problem& problem,
                                       const LegalGraph& g,
                                       std::span<const Label> labeling,
                                       Label isolated_label, unsigned R,
                                       std::uint64_t isolated) {
  require(g.n() >= 2, "Definition 9 applies to graphs with >= 2 nodes");
  require(labeling.size() == g.n(), "one label per node required");
  require(isolated < g.n(), "isolated count must be < |V(G)|");

  const std::uint64_t copies = ipow(g.n(), R);
  const LegalGraph gamma = replicate_with_isolated(g, copies, isolated);

  std::vector<Label> gamma_labels(gamma.n());
  for (std::uint64_t c = 0; c < copies; ++c) {
    for (Node v = 0; v < g.n(); ++v) {
      gamma_labels[c * g.n() + v] = labeling[v];
    }
  }
  for (std::uint64_t i = 0; i < isolated; ++i) {
    gamma_labels[copies * g.n() + i] = isolated_label;
  }

  ReplicabilityTrial trial;
  trial.gamma_valid = problem.valid(gamma, gamma_labels);
  trial.g_valid = problem.valid(g, labeling);
  return trial;
}

bool replicable_over_binary_labelings(const Problem& problem,
                                      const LegalGraph& g, unsigned R) {
  require(g.n() <= 16, "exhaustive labeling search limited to n <= 16");
  const std::uint64_t labelings = 1ull << g.n();
  for (std::uint64_t mask = 0; mask < labelings; ++mask) {
    std::vector<Label> labeling(g.n());
    for (Node v = 0; v < g.n(); ++v) {
      labeling[v] = (mask >> v) & 1u ? kLabelIn : kLabelOut;
    }
    for (Label ell : {kLabelOut, kLabelIn}) {
      for (std::uint64_t isolated : {std::uint64_t{0}, std::uint64_t{1},
                                     std::uint64_t{g.n() - 1}}) {
        const auto trial =
            replicability_trial(problem, g, labeling, ell, R, isolated);
        if (!trial.consistent()) return false;
      }
    }
  }
  return true;
}

}  // namespace mpcstab
