// Graph problems as the paper defines them (Section 2.3): each node outputs
// a label from a finite alphabet; a problem is a collection of valid outputs
// per (topology, IDs) pair — validity may NOT depend on names. Edge problems
// are handled as vertex problems on line graphs, as the paper prescribes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/balls.h"
#include "graph/legal_graph.h"

namespace mpcstab {

/// Node output label.
using Label = std::int64_t;

/// Special labels shared by several problems.
inline constexpr Label kLabelOut = 0;
inline constexpr Label kLabelIn = 1;
/// "Undecided" label of extendable algorithms (Definition 44).
inline constexpr Label kLabelBot = -1;

/// A vertex-labeling graph problem.
class Problem {
 public:
  virtual ~Problem() = default;
  virtual std::string name() const = 0;

  /// Whether `labels` is a valid output on `g`. Must not inspect names.
  virtual bool valid(const LegalGraph& g,
                     std::span<const Label> labels) const = 0;
};

/// An r-radius checkable problem (Definition 8): a node's output validity
/// is determined by its r-radius ball and the labels inside it.
class RRadiusCheckable : public Problem {
 public:
  virtual std::uint32_t radius() const = 0;

  /// Validity of the center's output given its radius() ball and the labels
  /// of ball nodes (aligned with the ball's internal indexing).
  virtual bool node_valid(const Ball& ball,
                          std::span<const Label> ball_labels) const = 0;

  /// Default global validity: every node's ball check passes.
  bool valid(const LegalGraph& g,
             std::span<const Label> labels) const override;
};

/// Maximal independent set: label 1 = in IS; independence + maximality.
/// 1-radius checkable (an LCL).
class MisProblem final : public RRadiusCheckable {
 public:
  std::string name() const override { return "maximal-independent-set"; }
  std::uint32_t radius() const override { return 1; }
  bool node_valid(const Ball& ball,
                  std::span<const Label> ball_labels) const override;
};

/// Independent set of size >= c * n / max(Delta, 1) (Section 5; an
/// Omega(1/Delta)-approximate maximum IS). NOT locally checkable: the size
/// constraint is global, which is exactly why it separates stable from
/// unstable algorithms. 2-replicable (Lemma 11).
class LargeIsProblem final : public Problem {
 public:
  explicit LargeIsProblem(double c) : c_(c) {}
  std::string name() const override { return "large-independent-set"; }
  double c() const { return c_; }
  bool valid(const LegalGraph& g,
             std::span<const Label> labels) const override;

  /// The independence part alone (used to decompose failures in benches).
  static bool independent(const LegalGraph& g, std::span<const Label> labels);
  /// Number of labeled-in nodes.
  static std::uint64_t size(std::span<const Label> labels);
  /// The size threshold c*n/max(Delta,1) for this graph.
  double threshold(const LegalGraph& g) const;

 private:
  double c_;
};

/// Proper vertex coloring with palette [0, palette). 1-radius checkable.
class VertexColoringProblem final : public RRadiusCheckable {
 public:
  explicit VertexColoringProblem(std::uint64_t palette) : palette_(palette) {}
  std::string name() const override { return "vertex-coloring"; }
  std::uint64_t palette() const { return palette_; }
  std::uint32_t radius() const override { return 1; }
  bool node_valid(const Ball& ball,
                  std::span<const Label> ball_labels) const override;

 private:
  std::uint64_t palette_;
};

/// The paper's Section 2.1 counterexample: every node outputs YES(1) iff
/// the entire graph is a simple path with consecutive node IDs. Has an
/// O(1)-round component-stable MPC algorithm (given n) yet an (n-1)-round
/// LOCAL lower bound — and is NOT replicable, which is how the revised
/// framework excludes it.
class ConsecutivePathProblem final : public Problem {
 public:
  std::string name() const override { return "consecutive-id-path"; }
  bool valid(const LegalGraph& g,
             std::span<const Label> labels) const override;

  /// Ground truth: is g a single path with consecutive IDs along it?
  static bool is_consecutive_path(const LegalGraph& g);
};

// ---------------------------------------------------------------------------
// Edge-labeled checkers (used directly on the original graph; the Problem-
// interface form of each is "vertex problem on the line graph", Section 2.3).
// ---------------------------------------------------------------------------

/// `edge_labels[i]` corresponds to `edges[i]` (the Graph::edges() order).
/// Matching: no two chosen edges share an endpoint.
bool is_matching(const Graph& g, std::span<const Label> edge_labels);

/// Maximal matching: matching + no augmentable edge.
bool is_maximal_matching(const Graph& g, std::span<const Label> edge_labels);

/// Proper edge coloring with palette [0, palette).
bool is_edge_coloring(const Graph& g, std::span<const Label> edge_labels,
                      std::uint64_t palette);

/// Sinkless orientation (Section 4.2.2): edge_labels[i] = 1 orients
/// edges[i] from u to v, 0 from v to u; valid iff every node has >= 1
/// outgoing edge. Requires min degree >= 1 to be satisfiable per node.
bool is_sinkless_orientation(const Graph& g,
                             std::span<const Label> edge_labels);

/// Nodes with no outgoing edge under the orientation.
std::vector<Node> sinks_of_orientation(const Graph& g,
                                       std::span<const Label> edge_labels);

/// Dominating set: every node is in the set or adjacent to a member.
/// (Theorem 28 lists O(1)-approximate minimum dominating set among the
/// lifted bounds; any maximal independent set is a dominating set.)
bool is_dominating_set(const Graph& g, std::span<const Label> labels);

}  // namespace mpcstab
