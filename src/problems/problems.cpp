#include "problems/problems.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"

namespace mpcstab {

bool RRadiusCheckable::valid(const LegalGraph& g,
                             std::span<const Label> labels) const {
  require(labels.size() == g.n(), "one label per node required");
  for (Node v = 0; v < g.n(); ++v) {
    const Ball ball = extract_ball(g, v, radius());
    std::vector<Label> ball_labels(ball.graph.n());
    for (Node i = 0; i < ball.graph.n(); ++i) {
      ball_labels[i] = labels[ball.to_parent[i]];
    }
    if (!node_valid(ball, ball_labels)) return false;
  }
  return true;
}

bool MisProblem::node_valid(const Ball& ball,
                            std::span<const Label> ball_labels) const {
  const Node c = ball.center;
  const bool in = ball_labels[c] == kLabelIn;
  bool neighbor_in = false;
  for (Node w : ball.graph.graph().neighbors(c)) {
    if (ball_labels[w] == kLabelIn) neighbor_in = true;
  }
  if (in) return !neighbor_in;   // independence
  return neighbor_in;            // maximality (dominated)
}

bool LargeIsProblem::independent(const LegalGraph& g,
                                 std::span<const Label> labels) {
  for (const Edge& e : g.graph().edges()) {
    if (labels[e.u] == kLabelIn && labels[e.v] == kLabelIn) return false;
  }
  return true;
}

std::uint64_t LargeIsProblem::size(std::span<const Label> labels) {
  std::uint64_t count = 0;
  for (Label l : labels) count += (l == kLabelIn) ? 1 : 0;
  return count;
}

double LargeIsProblem::threshold(const LegalGraph& g) const {
  const double delta = std::max<std::uint32_t>(1, g.max_degree());
  return c_ * static_cast<double>(g.n()) / delta;
}

bool LargeIsProblem::valid(const LegalGraph& g,
                           std::span<const Label> labels) const {
  require(labels.size() == g.n(), "one label per node required");
  if (!independent(g, labels)) return false;
  return static_cast<double>(size(labels)) >= threshold(g);
}

bool VertexColoringProblem::node_valid(
    const Ball& ball, std::span<const Label> ball_labels) const {
  const Node c = ball.center;
  const Label color = ball_labels[c];
  if (color < 0 || static_cast<std::uint64_t>(color) >= palette_) {
    return false;
  }
  for (Node w : ball.graph.graph().neighbors(c)) {
    if (ball_labels[w] == color) return false;
  }
  return true;
}

bool ConsecutivePathProblem::is_consecutive_path(const LegalGraph& g) {
  const Node n = g.n();
  if (n == 0) return false;
  if (n == 1) return true;
  if (g.component_count() != 1) return false;
  // Exactly two degree-1 nodes, rest degree 2.
  Node deg1 = 0;
  for (Node v = 0; v < n; ++v) {
    const auto d = g.graph().degree(v);
    if (d == 1) {
      ++deg1;
    } else if (d != 2) {
      return false;
    }
  }
  if (deg1 != 2) return false;
  // Walk from the endpoint with the smaller ID; IDs must increase by one.
  Node start = 0;
  bool found = false;
  for (Node v = 0; v < n; ++v) {
    if (g.graph().degree(v) == 1 &&
        (!found || g.id(v) < g.id(start))) {
      start = v;
      found = true;
    }
  }
  Node prev = start;
  Node cur = g.graph().neighbors(start)[0];
  NodeId expected = g.id(start) + 1;
  for (Node step = 1; step < n; ++step) {
    if (g.id(cur) != expected) return false;
    ++expected;
    if (step + 1 == n) break;
    Node next = cur;
    for (Node w : g.graph().neighbors(cur)) {
      if (w != prev) next = w;
    }
    if (next == cur) return false;
    prev = cur;
    cur = next;
  }
  return true;
}

bool ConsecutivePathProblem::valid(const LegalGraph& g,
                                   std::span<const Label> labels) const {
  require(labels.size() == g.n(), "one label per node required");
  const Label answer = is_consecutive_path(g) ? kLabelIn : kLabelOut;
  return std::all_of(labels.begin(), labels.end(),
                     [answer](Label l) { return l == answer; });
}

bool is_matching(const Graph& g, std::span<const Label> edge_labels) {
  const auto edges = g.edges();
  require(edge_labels.size() == edges.size(), "one label per edge required");
  std::vector<std::uint8_t> matched(g.n(), 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edge_labels[i] != kLabelIn) continue;
    if (matched[edges[i].u] || matched[edges[i].v]) return false;
    matched[edges[i].u] = matched[edges[i].v] = 1;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, std::span<const Label> edge_labels) {
  if (!is_matching(g, edge_labels)) return false;
  const auto edges = g.edges();
  std::vector<std::uint8_t> matched(g.n(), 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edge_labels[i] == kLabelIn) {
      matched[edges[i].u] = matched[edges[i].v] = 1;
    }
  }
  for (const Edge& e : edges) {
    if (!matched[e.u] && !matched[e.v]) return false;  // augmentable
  }
  return true;
}

bool is_edge_coloring(const Graph& g, std::span<const Label> edge_labels,
                      std::uint64_t palette) {
  const auto edges = g.edges();
  require(edge_labels.size() == edges.size(), "one label per edge required");
  for (Label l : edge_labels) {
    if (l < 0 || static_cast<std::uint64_t>(l) >= palette) return false;
  }
  // Adjacent edges (sharing an endpoint) must differ: check per node.
  std::vector<std::vector<Label>> incident(g.n());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    incident[edges[i].u].push_back(edge_labels[i]);
    incident[edges[i].v].push_back(edge_labels[i]);
  }
  for (Node v = 0; v < g.n(); ++v) {
    auto& colors = incident[v];
    std::sort(colors.begin(), colors.end());
    if (std::adjacent_find(colors.begin(), colors.end()) != colors.end()) {
      return false;
    }
  }
  return true;
}

std::vector<Node> sinks_of_orientation(const Graph& g,
                                       std::span<const Label> edge_labels) {
  const auto edges = g.edges();
  require(edge_labels.size() == edges.size(), "one label per edge required");
  std::vector<std::uint8_t> has_out(g.n(), 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    // Label 1: u -> v (u has the out-edge); label 0: v -> u.
    if (edge_labels[i] == kLabelIn) {
      has_out[edges[i].u] = 1;
    } else {
      has_out[edges[i].v] = 1;
    }
  }
  std::vector<Node> sinks;
  for (Node v = 0; v < g.n(); ++v) {
    if (g.degree(v) > 0 && !has_out[v]) sinks.push_back(v);
  }
  return sinks;
}

bool is_sinkless_orientation(const Graph& g,
                             std::span<const Label> edge_labels) {
  return sinks_of_orientation(g, edge_labels).empty();
}

bool is_dominating_set(const Graph& g, std::span<const Label> labels) {
  require(labels.size() == g.n(), "one label per node required");
  for (Node v = 0; v < g.n(); ++v) {
    if (labels[v] == kLabelIn) continue;
    bool dominated = false;
    for (Node w : g.neighbors(v)) {
      if (labels[w] == kLabelIn) dominated = true;
    }
    if (!dominated) return false;
  }
  return true;
}

}  // namespace mpcstab
