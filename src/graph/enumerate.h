// Exhaustive enumeration of small graphs. The lifting framework's hard
// instances are *found* by brute-force search over all graphs of bounded
// size (footnote 11 of the paper: "we can run a brute-force search on each
// machine"); this module provides that search space for testable sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace mpcstab {

/// Calls `fn` for every simple graph on exactly n labeled nodes
/// (2^(n(n-1)/2) graphs); n <= 7 enforced.
void for_each_graph(Node n, const std::function<void(const Graph&)>& fn);

/// Calls `fn` for every *connected* simple graph on n labeled nodes.
void for_each_connected_graph(Node n,
                              const std::function<void(const Graph&)>& fn);

/// Canonical form of a graph on n <= 8 nodes: the minimum adjacency bitmask
/// over all node permutations. Equal canonical forms <=> isomorphic.
std::uint64_t canonical_form(const Graph& g);

/// Number of labeled graphs on n nodes (2^(n choose 2)); n <= 11.
std::uint64_t labeled_graph_count(Node n);

}  // namespace mpcstab
