// Graph operations underlying the paper's constructions: induced subgraphs
// and disjoint unions (normal families, Definition 7), isolated-node padding
// and graph replication (replicability, Definition 9), and line graphs (the
// edge-labeling-to-vertex-labeling conversion of Section 2.3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/legal_graph.h"

namespace mpcstab {

/// Subgraph induced by `nodes` plus the index mapping back to the parent.
struct InducedSubgraph {
  Graph graph;
  std::vector<Node> to_parent;  // child index -> parent index
};

/// Induced subgraph on the given (distinct) nodes.
InducedSubgraph induced_subgraph(const Graph& g, std::span<const Node> nodes);

/// Disjoint union of topologies; nodes of parts[i] are offset by the total
/// size of parts[0..i).
Graph disjoint_union(std::span<const Graph> parts);

/// `g` plus `k` extra isolated nodes appended at the end.
Graph add_isolated(const Graph& g, Node k);

/// Line graph L(g) plus, for each line-graph node, the original edge it
/// represents. Line-node i corresponds to edge_of[i]; two line nodes are
/// adjacent iff their edges share an endpoint.
struct LineGraph {
  Graph graph;
  std::vector<Edge> edge_of;
};

LineGraph line_graph(const Graph& g);

/// Line graph of a *legal* graph: IDs and names of line nodes are Cantor
/// pairings of their endpoints' IDs/names, as the paper prescribes
/// ("IDs and names given by Cartesian products of the IDs and names of
/// their endpoints").
struct LegalLineGraph {
  LegalGraph graph;
  std::vector<Edge> edge_of;
};

LegalLineGraph legal_line_graph(const LegalGraph& g);

/// The replicability gadget Gamma_G of Definition 9: `copies` disjoint
/// copies of g (each copy reuses g's IDs — legal, because IDs need only be
/// component-unique) plus `isolated` extra nodes all sharing one ID.
/// Names are fresh and globally unique.
LegalGraph replicate_with_isolated(const LegalGraph& g, std::uint64_t copies,
                                   std::uint64_t isolated);

}  // namespace mpcstab
