#include "graph/enumerate.h"

#include <algorithm>
#include <numeric>

#include "graph/components.h"
#include "support/check.h"

namespace mpcstab {

namespace {

Graph graph_from_mask(Node n, std::uint64_t mask) {
  std::vector<Edge> edges;
  std::uint32_t bit = 0;
  for (Node u = 0; u < n; ++u) {
    for (Node v = u + 1; v < n; ++v, ++bit) {
      if (mask & (1ull << bit)) edges.push_back({u, v});
    }
  }
  return Graph::from_edges(n, edges);
}

std::uint64_t mask_from_graph(const Graph& g,
                              std::span<const Node> perm) {
  std::uint64_t mask = 0;
  std::uint32_t bit = 0;
  const Node n = g.n();
  for (Node u = 0; u < n; ++u) {
    for (Node v = u + 1; v < n; ++v, ++bit) {
      if (g.has_edge(perm[u], perm[v])) mask |= (1ull << bit);
    }
  }
  return mask;
}

}  // namespace

void for_each_graph(Node n, const std::function<void(const Graph&)>& fn) {
  require(n <= 7, "enumeration limited to n <= 7");
  const std::uint32_t pairs = n * (n - 1) / 2;
  for (std::uint64_t mask = 0; mask < (1ull << pairs); ++mask) {
    fn(graph_from_mask(n, mask));
  }
}

void for_each_connected_graph(Node n,
                              const std::function<void(const Graph&)>& fn) {
  for_each_graph(n, [&](const Graph& g) {
    if (connected_components(g).count == 1) fn(g);
  });
}

std::uint64_t canonical_form(const Graph& g) {
  const Node n = g.n();
  require(n <= 8, "canonical_form limited to n <= 8");
  std::vector<Node> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::uint64_t best = ~0ull;
  do {
    best = std::min(best, mask_from_graph(g, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

std::uint64_t labeled_graph_count(Node n) {
  require(n <= 11, "labeled_graph_count limited to n <= 11");
  return 1ull << (n * (n - 1) / 2);
}

}  // namespace mpcstab
