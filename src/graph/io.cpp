#include "graph/io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace mpcstab {

void write_graph(std::ostream& out, const LegalGraph& g) {
  out << "graph " << g.n() << ' ' << g.graph().m() << '\n';
  for (Node v = 0; v < g.n(); ++v) {
    out << "node " << v << ' ' << g.id(v) << ' ' << g.name(v) << '\n';
  }
  for (const Edge& e : g.graph().edges()) {
    out << "edge " << e.u << ' ' << e.v << '\n';
  }
}

LegalGraph read_graph(std::istream& in) {
  std::string token;
  Node n = 0;
  std::uint64_t m = 0;
  bool have_header = false;
  std::vector<NodeId> ids;
  std::vector<NodeName> names;
  std::vector<Edge> edges;
  std::vector<std::uint8_t> node_seen;

  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    if (!(ls >> token)) continue;  // blank line

    if (token == "graph") {
      require(!have_header, "duplicate graph header");
      require(static_cast<bool>(ls >> n >> m), "malformed graph header");
      have_header = true;
      ids.assign(n, 0);
      names.assign(n, 0);
      node_seen.assign(n, 0);
    } else if (token == "node") {
      require(have_header, "node line before graph header");
      Node v = 0;
      NodeId id = 0;
      NodeName name = 0;
      require(static_cast<bool>(ls >> v >> id >> name),
              "malformed node line");
      require(v < n, "node index out of range");
      require(!node_seen[v], "duplicate node line");
      node_seen[v] = 1;
      ids[v] = id;
      names[v] = name;
    } else if (token == "edge") {
      require(have_header, "edge line before graph header");
      Edge e;
      require(static_cast<bool>(ls >> e.u >> e.v), "malformed edge line");
      edges.push_back(e);
    } else {
      require(false, "unknown token in graph file");
    }
  }
  require(have_header, "missing graph header");
  for (Node v = 0; v < n; ++v) {
    require(node_seen[v], "missing node line");
  }
  require(edges.size() == m, "edge count mismatch with header");
  return LegalGraph::make(Graph::from_edges(n, edges), std::move(ids),
                          std::move(names));
}

std::string graph_to_string(const LegalGraph& g) {
  std::ostringstream out;
  write_graph(out, g);
  return out.str();
}

LegalGraph graph_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

}  // namespace mpcstab
