#include "graph/graph.h"

#include <algorithm>

#include "support/check.h"

namespace mpcstab {

Graph::Graph(Node n) : offsets_(static_cast<std::size_t>(n) + 1, 0) {}

Graph Graph::from_edges(Node n, std::span<const Edge> edges) {
  Graph g(n);
  std::vector<std::pair<Node, Node>> directed;
  directed.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    require(e.u < n && e.v < n, "edge endpoint out of range");
    require(e.u != e.v, "self-loops are not allowed in simple graphs");
    directed.emplace_back(e.u, e.v);
    directed.emplace_back(e.v, e.u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  g.adjacency_.reserve(directed.size());
  for (const auto& [u, v] : directed) {
    ++g.offsets_[u + 1];
    g.adjacency_.push_back(v);
  }
  for (Node v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  return g;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t best = 0;
  for (Node v = 0; v < n(); ++v) best = std::max(best, degree(v));
  return best;
}

std::uint32_t Graph::min_degree() const {
  if (n() == 0) return 0;
  std::uint32_t best = degree(0);
  for (Node v = 1; v < n(); ++v) best = std::min(best, degree(v));
  return best;
}

bool Graph::has_edge(Node u, Node v) const {
  require(u < n() && v < n(), "node out of range");
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (Node u = 0; u < n(); ++u) {
    for (Node v : neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

}  // namespace mpcstab
