// Graph generators: the input families the paper's constructions and lower
// bounds live on (cycles for the connectivity conjecture, paths for
// D-diameter s-t connectivity, forests for the normal-family lower bounds,
// d-regular graphs for sinkless orientation, etc.).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "rng/prf.h"

namespace mpcstab {

/// Simple path on n nodes: 0-1-2-...-(n-1).
Graph path_graph(Node n);

/// Single cycle on n >= 3 nodes.
Graph cycle_graph(Node n);

/// Disjoint union of two cycles of n/2 nodes each (n even, n >= 6): the
/// "two cycles" side of the connectivity conjecture instance.
Graph two_cycles_graph(Node n);

/// Complete graph K_n.
Graph complete_graph(Node n);

/// Star with one center and n-1 leaves.
Graph star_graph(Node n);

/// 2D grid on rows x cols nodes.
Graph grid_graph(Node rows, Node cols);

/// Uniform random tree on n nodes (random attachment), seeded.
Graph random_tree(Node n, const Prf& prf);

/// Forest of `trees` random trees totalling n nodes.
Graph random_forest(Node n, Node trees, const Prf& prf);

/// Erdos-Renyi G(n, p), seeded.
Graph random_graph(Node n, double p, const Prf& prf);

/// Random d-regular graph via the configuration model with retries; requires
/// n*d even and d < n. Falls back to near-regular (max degree d) if a
/// perfect matching of stubs is not found after retries.
Graph random_regular_graph(Node n, std::uint32_t d, const Prf& prf);

/// Random graph with maximum degree <= max_deg and roughly target_m edges.
Graph random_bounded_degree_graph(Node n, std::uint32_t max_deg,
                                  std::uint64_t target_m, const Prf& prf);

/// Disjoint union of `copies` caterpillar trees (used for forest workloads).
Graph caterpillar_forest(Node spine, Node legs_per_node, Node copies);

/// Balanced binary tree on n nodes (node v's parent is (v-1)/2):
/// diameter ~ 2*log2(n), max degree 3 — the low-diameter bounded-degree
/// workhorse for propagation benchmarks.
Graph balanced_binary_tree(Node n);

/// d-dimensional hypercube on 2^d nodes: diameter d, degree d,
/// vertex-transitive — a symmetric stress case for symmetry-breaking
/// algorithms.
Graph hypercube_graph(std::uint32_t dimension);

}  // namespace mpcstab
