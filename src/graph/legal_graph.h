// Legal graphs (Definition 6 of the paper): a topology equipped with two
// labelings —
//   * names: fully unique across the whole graph. Their only purpose is to
//     let MPC machines distinguish nodes as objects; component-stable
//     outputs must NOT depend on them.
//   * IDs: unique only within each connected component. These are the
//     symmetry-breaking labels that component-stable outputs MAY depend on.
//
// This split is the paper's resolution of the identifier-uniqueness tension
// discussed in Section 2.1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/components.h"
#include "graph/graph.h"

namespace mpcstab {

/// Component-unique identifier of a node (Definition 6).
using NodeId = std::uint64_t;

/// Globally unique machine-facing name of a node (Definition 6).
using NodeName = std::uint64_t;

/// A graph with names and IDs satisfying Definition 6. Construction
/// validates legality and throws IllegalGraphError on violation.
class LegalGraph {
 public:
  /// Legal graph whose IDs and names are both the identity labeling
  /// 0..n-1 (always legal).
  static LegalGraph with_identity(Graph g);

  /// Fully general constructor; validates that `names` are fully unique and
  /// `ids` are unique within every connected component.
  static LegalGraph make(Graph g, std::vector<NodeId> ids,
                         std::vector<NodeName> names);

  const Graph& graph() const { return graph_; }
  Node n() const { return graph_.n(); }
  std::uint32_t max_degree() const { return graph_.max_degree(); }

  NodeId id(Node v) const { return ids_[v]; }
  NodeName name(Node v) const { return names_[v]; }
  std::span<const NodeId> ids() const { return ids_; }
  std::span<const NodeName> names() const { return names_; }

  /// Component label of v (precomputed at construction).
  std::uint32_t component(Node v) const { return components_.comp[v]; }
  std::uint32_t component_count() const { return components_.count; }
  const Components& components() const { return components_; }

  /// Internal node whose ID is `id` inside component `comp`; requires it to
  /// exist.
  Node node_with_id(std::uint32_t comp, NodeId id) const;

 private:
  LegalGraph(Graph g, std::vector<NodeId> ids, std::vector<NodeName> names,
             Components components);

  Graph graph_;
  std::vector<NodeId> ids_;
  std::vector<NodeName> names_;
  Components components_;
};

/// Extracted connected component: a legal graph of its own (IDs preserved,
/// hence unique; names preserved, hence unique) plus the mapping back to
/// the parent's internal indices.
struct ComponentView {
  LegalGraph graph;
  /// to_parent[i] = parent internal index of the component's node i.
  std::vector<Node> to_parent;
};

/// Extracts connected component `comp` of `g`.
ComponentView extract_component(const LegalGraph& g, std::uint32_t comp);

}  // namespace mpcstab
