// Immutable undirected simple graph in CSR (compressed sparse row) form.
// All higher layers — the LOCAL engine, the MPC simulator, and the
// component-stability framework — share this one topology type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mpcstab {

/// Internal node index; nodes are 0..n-1. Distinct from the *ID* and *name*
/// spaces of legal graphs (Definition 6), which live in LegalGraph.
using Node = std::uint32_t;

/// An undirected edge between internal indices.
struct Edge {
  Node u = 0;
  Node v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable undirected simple graph.
class Graph {
 public:
  /// Empty graph on n isolated nodes.
  explicit Graph(Node n = 0);

  /// Builds from an edge list; rejects self-loops, deduplicates parallel
  /// edges, and ignores edge direction.
  static Graph from_edges(Node n, std::span<const Edge> edges);

  Node n() const { return static_cast<Node>(offsets_.size() - 1); }

  /// Number of undirected edges.
  std::uint64_t m() const { return adjacency_.size() / 2; }

  std::uint32_t degree(Node v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Node> neighbors(Node v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::uint32_t max_degree() const;
  std::uint32_t min_degree() const;

  /// True when {u, v} is an edge (binary search; neighbors are sorted).
  bool has_edge(Node u, Node v) const;

  /// All edges with u < v, in lexicographic order.
  std::vector<Edge> edges() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<Node> adjacency_;         // sorted per node
};

}  // namespace mpcstab
