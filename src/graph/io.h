// Plain-text serialization of legal graphs: a downstream user's entry
// point for feeding their own inputs to the simulator, and the format the
// bench harness can dump instances in for external inspection.
//
// Format (whitespace/line oriented, '#' comments):
//   graph <n> <m>
//   node <index> <id> <name>     (n lines)
//   edge <u> <v>                 (m lines)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/legal_graph.h"

namespace mpcstab {

/// Writes `g` in the text format above.
void write_graph(std::ostream& out, const LegalGraph& g);

/// Parses a graph in the text format above; throws PreconditionError on
/// malformed input and IllegalGraphError on illegal labelings.
LegalGraph read_graph(std::istream& in);

/// Round-trip helpers over strings.
std::string graph_to_string(const LegalGraph& g);
LegalGraph graph_from_string(const std::string& text);

}  // namespace mpcstab
