// Serializable "what a node knows about the graph" state: the payload of
// both flooding (LOCAL ball gathering) and native graph exponentiation
// (MPC ball doubling). A Knowledge value carries the (id, name) vertices
// and id-keyed edges learned so far and can be encoded into message words,
// merged from payloads, and cut down to an exact r-radius Ball.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "graph/balls.h"
#include "graph/legal_graph.h"

namespace mpcstab {

/// Accumulated knowledge of one node or machine about the graph.
struct Knowledge {
  /// id -> name for every known vertex.
  std::map<NodeId, NodeName> vertices;
  /// Edges as ordered id pairs (min, max).
  std::set<std::pair<NodeId, NodeId>> edges;

  /// Initial knowledge of node v in g: itself, its neighbors, its edges.
  static Knowledge of_node(const LegalGraph& g, Node v);

  /// Serializes to message words: [#vertices, #edges, (id,name)*, (a,b)*].
  std::vector<std::uint64_t> encode() const;

  /// Merges a payload produced by encode().
  void merge(std::span<const std::uint64_t> payload);

  /// Merges another knowledge value directly.
  void merge(const Knowledge& other);

  /// Words encode() will produce.
  std::uint64_t encoded_words() const {
    return 2 + 2 * vertices.size() + 2 * edges.size();
  }

  /// Reconstructs the exact r-radius ball around the node with ID
  /// `center_id` from the known edges (requires the knowledge to cover at
  /// least that ball, which r flooding rounds / log r doublings guarantee).
  Ball to_ball(NodeId center_id, std::uint32_t radius) const;

  /// Knowledge restricted to the r-radius ball around `center_id` — what a
  /// space-conscious machine keeps after a doubling step overshoots the
  /// target radius.
  Knowledge pruned(NodeId center_id, std::uint32_t radius) const;
};

}  // namespace mpcstab
