#include "graph/components.h"

#include <deque>

namespace mpcstab {

Components connected_components(const Graph& g) {
  constexpr std::uint32_t kUnset = 0xffffffffu;
  Components result;
  result.comp.assign(g.n(), kUnset);
  std::deque<Node> queue;
  for (Node start = 0; start < g.n(); ++start) {
    if (result.comp[start] != kUnset) continue;
    const std::uint32_t label = result.count++;
    result.comp[start] = label;
    queue.push_back(start);
    while (!queue.empty()) {
      Node v = queue.front();
      queue.pop_front();
      for (Node w : g.neighbors(v)) {
        if (result.comp[w] == kUnset) {
          result.comp[w] = label;
          queue.push_back(w);
        }
      }
    }
  }
  return result;
}

std::vector<std::vector<Node>> component_node_lists(const Graph& g) {
  const Components c = connected_components(g);
  std::vector<std::vector<Node>> lists(c.count);
  for (Node v = 0; v < g.n(); ++v) lists[c.comp[v]].push_back(v);
  return lists;
}

}  // namespace mpcstab
