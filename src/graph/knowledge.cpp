#include "graph/knowledge.h"

#include <algorithm>

#include "graph/ops.h"
#include "support/check.h"

namespace mpcstab {

Knowledge Knowledge::of_node(const LegalGraph& g, Node v) {
  Knowledge k;
  k.vertices.emplace(g.id(v), g.name(v));
  for (Node w : g.graph().neighbors(v)) {
    k.vertices.emplace(g.id(w), g.name(w));
    k.edges.emplace(std::min(g.id(v), g.id(w)), std::max(g.id(v), g.id(w)));
  }
  return k;
}

std::vector<std::uint64_t> Knowledge::encode() const {
  std::vector<std::uint64_t> out;
  out.reserve(encoded_words());
  out.push_back(vertices.size());
  out.push_back(edges.size());
  for (const auto& [id, name] : vertices) {
    out.push_back(id);
    out.push_back(name);
  }
  for (const auto& [a, b] : edges) {
    out.push_back(a);
    out.push_back(b);
  }
  return out;
}

void Knowledge::merge(std::span<const std::uint64_t> payload) {
  require(payload.size() >= 2, "malformed knowledge payload");
  const std::uint64_t nv = payload[0];
  const std::uint64_t ne = payload[1];
  require(payload.size() == 2 + 2 * nv + 2 * ne,
          "knowledge payload size mismatch");
  std::size_t pos = 2;
  for (std::uint64_t i = 0; i < nv; ++i) {
    vertices.emplace(payload[pos], payload[pos + 1]);
    pos += 2;
  }
  for (std::uint64_t i = 0; i < ne; ++i) {
    edges.emplace(payload[pos], payload[pos + 1]);
    pos += 2;
  }
}

void Knowledge::merge(const Knowledge& other) {
  vertices.insert(other.vertices.begin(), other.vertices.end());
  edges.insert(other.edges.begin(), other.edges.end());
}

Ball Knowledge::to_ball(NodeId center_id, std::uint32_t radius) const {
  // Index the known vertices; build the known graph; cut to radius.
  std::vector<NodeId> ids;
  ids.reserve(vertices.size());
  for (const auto& [id, name] : vertices) ids.push_back(id);
  std::map<NodeId, Node> index;
  for (Node i = 0; i < ids.size(); ++i) index.emplace(ids[i], i);

  std::vector<Edge> edge_list;
  edge_list.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    edge_list.push_back({index.at(a), index.at(b)});
  }
  Graph known =
      Graph::from_edges(static_cast<Node>(ids.size()), edge_list);

  const auto center_it = index.find(center_id);
  require(center_it != index.end(), "knowledge must include the center");
  const auto dist = bfs_distances(known, center_it->second, radius);
  std::vector<Node> members;
  for (Node i = 0; i < known.n(); ++i) {
    if (dist[i] != 0xffffffffu) members.push_back(i);
  }
  InducedSubgraph sub = induced_subgraph(known, members);
  std::vector<NodeId> sub_ids;
  std::vector<NodeName> sub_names;
  Node sub_center = 0;
  for (Node i = 0; i < sub.to_parent.size(); ++i) {
    const NodeId id = ids[sub.to_parent[i]];
    sub_ids.push_back(id);
    sub_names.push_back(vertices.at(id));
    if (id == center_id) sub_center = i;
  }
  return Ball{LegalGraph::make(std::move(sub.graph), std::move(sub_ids),
                               std::move(sub_names)),
              sub_center,
              {},  // no parent-index mapping across a message boundary
              radius};
}

Knowledge Knowledge::pruned(NodeId center_id, std::uint32_t radius) const {
  const Ball ball = to_ball(center_id, radius);
  Knowledge k;
  for (Node v = 0; v < ball.graph.n(); ++v) {
    k.vertices.emplace(ball.graph.id(v), ball.graph.name(v));
  }
  for (const Edge& e : ball.graph.graph().edges()) {
    k.edges.emplace(std::min(ball.graph.id(e.u), ball.graph.id(e.v)),
                    std::max(ball.graph.id(e.u), ball.graph.id(e.v)));
  }
  return k;
}

}  // namespace mpcstab
