// Connected components of a Graph. Component structure is the central object
// of the paper: component-stable outputs may depend only on the component of
// a node (Definition 13), and IDs of legal graphs need only be unique within
// components (Definition 6).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mpcstab {

/// Component labeling of a graph.
struct Components {
  /// comp[v] in [0, count) for every node v; nodes in the same connected
  /// component share a label. Labels are assigned in order of smallest
  /// contained node index.
  std::vector<std::uint32_t> comp;
  std::uint32_t count = 0;
};

/// BFS component labeling; O(n + m).
Components connected_components(const Graph& g);

/// Node lists per component, each sorted ascending.
std::vector<std::vector<Node>> component_node_lists(const Graph& g);

}  // namespace mpcstab
