#include "graph/legal_graph.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"

namespace mpcstab {

LegalGraph::LegalGraph(Graph g, std::vector<NodeId> ids,
                       std::vector<NodeName> names, Components components)
    : graph_(std::move(g)),
      ids_(std::move(ids)),
      names_(std::move(names)),
      components_(std::move(components)) {}

LegalGraph LegalGraph::with_identity(Graph g) {
  const Node n = g.n();
  std::vector<NodeId> ids(n);
  std::vector<NodeName> names(n);
  for (Node v = 0; v < n; ++v) {
    ids[v] = v;
    names[v] = v;
  }
  return make(std::move(g), std::move(ids), std::move(names));
}

LegalGraph LegalGraph::make(Graph g, std::vector<NodeId> ids,
                            std::vector<NodeName> names) {
  const Node n = g.n();
  if (ids.size() != n || names.size() != n) {
    throw IllegalGraphError("ids/names size must equal node count");
  }
  {
    std::unordered_set<NodeName> seen;
    seen.reserve(n * 2);
    for (NodeName name : names) {
      if (!seen.insert(name).second) {
        throw IllegalGraphError("names must be fully unique (Definition 6)");
      }
    }
  }
  Components components = connected_components(g);
  {
    // IDs must be unique within each component: check (component, id) pairs.
    std::vector<std::pair<std::uint32_t, NodeId>> pairs;
    pairs.reserve(n);
    for (Node v = 0; v < n; ++v) pairs.emplace_back(components.comp[v], ids[v]);
    std::sort(pairs.begin(), pairs.end());
    if (std::adjacent_find(pairs.begin(), pairs.end()) != pairs.end()) {
      throw IllegalGraphError(
          "IDs must be unique within every connected component "
          "(Definition 6)");
    }
  }
  return LegalGraph(std::move(g), std::move(ids), std::move(names),
                    std::move(components));
}

Node LegalGraph::node_with_id(std::uint32_t comp, NodeId target) const {
  for (Node v = 0; v < n(); ++v) {
    if (components_.comp[v] == comp && ids_[v] == target) return v;
  }
  require(false, "no node with the requested ID in the component");
  return 0;  // unreachable
}

ComponentView extract_component(const LegalGraph& g, std::uint32_t comp) {
  require(comp < g.component_count(), "component index out of range");
  std::vector<Node> to_parent;
  std::vector<Node> to_child(g.n(), 0);
  for (Node v = 0; v < g.n(); ++v) {
    if (g.component(v) == comp) {
      to_child[v] = static_cast<Node>(to_parent.size());
      to_parent.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (Node v : to_parent) {
    for (Node w : g.graph().neighbors(v)) {
      if (v < w) edges.push_back({to_child[v], to_child[w]});
    }
  }
  std::vector<NodeId> ids;
  std::vector<NodeName> names;
  ids.reserve(to_parent.size());
  names.reserve(to_parent.size());
  for (Node v : to_parent) {
    ids.push_back(g.id(v));
    names.push_back(g.name(v));
  }
  Graph sub = Graph::from_edges(static_cast<Node>(to_parent.size()), edges);
  return ComponentView{
      LegalGraph::make(std::move(sub), std::move(ids), std::move(names)),
      std::move(to_parent)};
}

}  // namespace mpcstab
