#include "graph/ops.h"

#include <algorithm>
#include <unordered_map>

#include "support/check.h"

namespace mpcstab {

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const Node> nodes) {
  std::unordered_map<Node, Node> to_child;
  to_child.reserve(nodes.size() * 2);
  std::vector<Node> to_parent(nodes.begin(), nodes.end());
  for (Node i = 0; i < to_parent.size(); ++i) {
    require(to_parent[i] < g.n(), "induced node out of range");
    const bool inserted = to_child.emplace(to_parent[i], i).second;
    require(inserted, "induced node list must be distinct");
  }
  std::vector<Edge> edges;
  for (Node i = 0; i < to_parent.size(); ++i) {
    for (Node w : g.neighbors(to_parent[i])) {
      auto it = to_child.find(w);
      if (it != to_child.end() && i < it->second) {
        edges.push_back({i, it->second});
      }
    }
  }
  return {Graph::from_edges(static_cast<Node>(to_parent.size()), edges),
          std::move(to_parent)};
}

Graph disjoint_union(std::span<const Graph> parts) {
  Node total = 0;
  for (const Graph& g : parts) total += g.n();
  std::vector<Edge> edges;
  Node offset = 0;
  for (const Graph& g : parts) {
    for (const Edge& e : g.edges()) {
      edges.push_back({static_cast<Node>(e.u + offset),
                       static_cast<Node>(e.v + offset)});
    }
    offset += g.n();
  }
  return Graph::from_edges(total, edges);
}

Graph add_isolated(const Graph& g, Node k) {
  const std::vector<Edge> edges = g.edges();
  return Graph::from_edges(g.n() + k, edges);
}

LineGraph line_graph(const Graph& g) {
  const std::vector<Edge> edge_of = g.edges();
  // Map each undirected edge to its line-node index.
  std::unordered_map<std::uint64_t, Node> index;
  index.reserve(edge_of.size() * 2);
  auto key = [](Node u, Node v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  for (Node i = 0; i < edge_of.size(); ++i) {
    index.emplace(key(edge_of[i].u, edge_of[i].v), i);
  }
  std::vector<Edge> line_edges;
  // Two edges are adjacent iff they share an endpoint: for each node, all
  // pairs of incident edges.
  for (Node v = 0; v < g.n(); ++v) {
    auto nb = g.neighbors(v);
    std::vector<Node> incident;
    incident.reserve(nb.size());
    for (Node w : nb) {
      const Node a = std::min(v, w), b = std::max(v, w);
      incident.push_back(index.at(key(a, b)));
    }
    for (std::size_t i = 0; i < incident.size(); ++i) {
      for (std::size_t j = i + 1; j < incident.size(); ++j) {
        line_edges.push_back({std::min(incident[i], incident[j]),
                              std::max(incident[i], incident[j])});
      }
    }
  }
  return {Graph::from_edges(static_cast<Node>(edge_of.size()), line_edges),
          edge_of};
}

namespace {

/// Cantor pairing: injective map N x N -> N.
std::uint64_t cantor(std::uint64_t a, std::uint64_t b) {
  return (a + b) * (a + b + 1) / 2 + b;
}

}  // namespace

LegalLineGraph legal_line_graph(const LegalGraph& g) {
  LineGraph lg = line_graph(g.graph());
  std::vector<NodeId> ids;
  std::vector<NodeName> names;
  ids.reserve(lg.edge_of.size());
  names.reserve(lg.edge_of.size());
  for (const Edge& e : lg.edge_of) {
    const NodeId ia = std::min(g.id(e.u), g.id(e.v));
    const NodeId ib = std::max(g.id(e.u), g.id(e.v));
    ids.push_back(cantor(ia, ib));
    const NodeName na = std::min(g.name(e.u), g.name(e.v));
    const NodeName nb = std::max(g.name(e.u), g.name(e.v));
    names.push_back(cantor(na, nb));
  }
  return {LegalGraph::make(std::move(lg.graph), std::move(ids),
                           std::move(names)),
          std::move(lg.edge_of)};
}

LegalGraph replicate_with_isolated(const LegalGraph& g, std::uint64_t copies,
                                   std::uint64_t isolated) {
  require(copies >= 1, "need at least one copy");
  const Node base = g.n();
  const std::uint64_t total64 = copies * base + isolated;
  require(total64 <= 0xffffffffull, "replicated graph too large");
  const Node total = static_cast<Node>(total64);

  std::vector<Edge> edges;
  edges.reserve(copies * g.graph().m());
  for (std::uint64_t c = 0; c < copies; ++c) {
    const Node offset = static_cast<Node>(c * base);
    for (const Edge& e : g.graph().edges()) {
      edges.push_back({static_cast<Node>(e.u + offset),
                       static_cast<Node>(e.v + offset)});
    }
  }
  std::vector<NodeId> ids(total);
  std::vector<NodeName> names(total);
  for (std::uint64_t c = 0; c < copies; ++c) {
    for (Node v = 0; v < base; ++v) {
      ids[c * base + v] = g.id(v);          // same IDs in every copy
      names[c * base + v] = c * base + v;   // fresh unique names
    }
  }
  // Isolated nodes all share one ID (their own singleton components make
  // this legal), with fresh names.
  const NodeId shared_id = 0x1501A7EDull;  // "ISOLATED" marker, any fixed ID
  for (std::uint64_t i = 0; i < isolated; ++i) {
    ids[copies * base + i] = shared_id;
    names[copies * base + i] = copies * base + i;
  }
  return LegalGraph::make(Graph::from_edges(total, edges), std::move(ids),
                          std::move(names));
}

}  // namespace mpcstab
