// r-radius balls and D-radius identity (Definition 23): two centered graphs
// are D-radius-identical when the topologies and node IDs (not names) of the
// D-radius balls around their centers coincide. This is the
// indistinguishability notion the whole lifting framework pivots on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/legal_graph.h"

namespace mpcstab {

/// The r-radius ball around a center node, extracted as a centered legal
/// graph (IDs and names inherited from the parent).
struct Ball {
  LegalGraph graph;
  Node center = 0;               // internal index within `graph`
  std::vector<Node> to_parent;   // ball index -> parent index
  std::uint32_t radius = 0;
};

/// Extracts the ball of radius r around v.
Ball extract_ball(const LegalGraph& g, Node v, std::uint32_t r);

/// Distance-limited BFS: dist[w] = d(v,w) for w within radius r,
/// 0xffffffff outside.
std::vector<std::uint32_t> bfs_distances(const Graph& g, Node v,
                                         std::uint32_t r);

/// True when the two centered balls are identical in the sense of
/// Definition 23: the map matching equal IDs is a graph isomorphism that
/// maps center to center. (IDs inside a ball are unique because balls are
/// connected and the parent graphs are legal.)
bool balls_identical(const Ball& a, const Ball& b);

/// Convenience: extracts both balls and compares (Definition 23 applied to
/// two graphs with chosen centers).
bool radius_identical(const LegalGraph& ga, Node va, const LegalGraph& gb,
                      Node vb, std::uint32_t radius);

}  // namespace mpcstab
