#include "graph/generators.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace mpcstab {

Graph path_graph(Node n) {
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Node v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<Node>(v + 1)});
  return Graph::from_edges(n, edges);
}

Graph cycle_graph(Node n) {
  require(n >= 3, "cycle needs >= 3 nodes");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (Node v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<Node>((v + 1) % n)});
  }
  return Graph::from_edges(n, edges);
}

Graph two_cycles_graph(Node n) {
  require(n >= 6 && n % 2 == 0, "two cycles need even n >= 6");
  const Node half = n / 2;
  std::vector<Edge> edges;
  edges.reserve(n);
  for (Node v = 0; v < half; ++v) {
    edges.push_back({v, static_cast<Node>((v + 1) % half)});
    edges.push_back({static_cast<Node>(half + v),
                     static_cast<Node>(half + (v + 1) % half)});
  }
  return Graph::from_edges(n, edges);
}

Graph complete_graph(Node n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Node u = 0; u < n; ++u) {
    for (Node v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph::from_edges(n, edges);
}

Graph star_graph(Node n) {
  require(n >= 1, "star needs >= 1 node");
  std::vector<Edge> edges;
  for (Node v = 1; v < n; ++v) edges.push_back({0, v});
  return Graph::from_edges(n, edges);
}

Graph grid_graph(Node rows, Node cols) {
  std::vector<Edge> edges;
  auto at = [cols](Node r, Node c) { return r * cols + c; };
  for (Node r = 0; r < rows; ++r) {
    for (Node c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({at(r, c), at(r, c + 1)});
      if (r + 1 < rows) edges.push_back({at(r, c), at(r + 1, c)});
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph random_tree(Node n, const Prf& prf) {
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Node v = 1; v < n; ++v) {
    const Node parent =
        static_cast<Node>(prf.word_below(/*stream=*/0x7472ee, v, v));
    edges.push_back({parent, v});
  }
  return Graph::from_edges(n, edges);
}

Graph random_forest(Node n, Node trees, const Prf& prf) {
  require(trees >= 1 && trees <= n, "forest needs 1 <= trees <= n");
  // First node of each tree is a fresh root; remaining nodes attach within
  // their tree's index range.
  std::vector<Edge> edges;
  const Node base_size = n / trees;
  Node start = 0;
  for (Node t = 0; t < trees; ++t) {
    const Node size = (t + 1 == trees) ? (n - start) : base_size;
    for (Node i = 1; i < size; ++i) {
      const Node parent = static_cast<Node>(
          start + prf.word_below(/*stream=*/0x666f72 + t, i, i));
      edges.push_back({parent, static_cast<Node>(start + i)});
    }
    start += size;
  }
  return Graph::from_edges(n, edges);
}

Graph random_graph(Node n, double p, const Prf& prf) {
  require(p >= 0.0 && p <= 1.0, "probability must be in [0,1]");
  std::vector<Edge> edges;
  std::uint64_t counter = 0;
  for (Node u = 0; u < n; ++u) {
    for (Node v = u + 1; v < n; ++v) {
      if (prf.unit(/*stream=*/0x6572, counter++) < p) edges.push_back({u, v});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph random_regular_graph(Node n, std::uint32_t d, const Prf& prf) {
  require(d >= 1 && d < n, "degree must be in [1, n)");
  require((static_cast<std::uint64_t>(n) * d) % 2 == 0,
          "n*d must be even for a d-regular graph");
  // Configuration model with edge-swap repair: pure rejection fails with
  // probability ~ 1 - exp(-d^2/4), so instead of resampling the whole
  // pairing we repair self-loops and duplicate edges by double-edge swaps
  // (the standard MCMC move, which preserves all degrees).
  const std::uint64_t stubs = static_cast<std::uint64_t>(n) * d;
  std::vector<Node> deck(stubs);
  for (std::uint64_t i = 0; i < stubs; ++i) {
    deck[i] = static_cast<Node>(i / d);
  }
  std::uint64_t counter = 0;
  for (std::uint64_t i = stubs - 1; i > 0; --i) {
    const std::uint64_t j = prf.word_below(/*stream=*/0x7265, counter++, i + 1);
    std::swap(deck[i], deck[j]);
  }
  std::vector<std::pair<Node, Node>> pairs(stubs / 2);
  for (std::uint64_t i = 0; i < pairs.size(); ++i) {
    pairs[i] = {deck[2 * i], deck[2 * i + 1]};
  }

  auto key = [](Node a, Node b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
           std::max(a, b);
  };
  auto is_bad = [&](std::uint64_t i,
                    const std::unordered_map<std::uint64_t, std::uint32_t>&
                        multiplicity) {
    const auto& [a, b] = pairs[i];
    return a == b || multiplicity.at(key(a, b)) > 1;
  };

  const std::uint64_t budget = 64 * stubs + 1024;
  for (std::uint64_t iter = 0; iter < budget; ++iter) {
    std::unordered_map<std::uint64_t, std::uint32_t> multiplicity;
    multiplicity.reserve(pairs.size() * 2);
    for (const auto& [a, b] : pairs) {
      if (a != b) ++multiplicity[key(a, b)];
    }
    std::vector<std::uint64_t> bad;
    for (std::uint64_t i = 0; i < pairs.size(); ++i) {
      if (is_bad(i, multiplicity)) bad.push_back(i);
    }
    if (bad.empty()) break;
    // Swap each bad pair with a uniformly random partner pair.
    for (std::uint64_t i : bad) {
      const std::uint64_t j =
          prf.word_below(0x73776170, counter++, pairs.size());
      if (i == j) continue;
      std::swap(pairs[i].second, pairs[j].second);
    }
  }

  std::vector<Edge> edges;
  edges.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    if (a == b) continue;  // residual self-loop: drop (near-regular)
    edges.push_back({a, b});
  }
  return Graph::from_edges(n, edges);
}

Graph random_bounded_degree_graph(Node n, std::uint32_t max_deg,
                                  std::uint64_t target_m, const Prf& prf) {
  std::vector<std::uint32_t> deg(n, 0);
  std::vector<Edge> edges;
  std::uint64_t counter = 0;
  std::uint64_t placed = 0;
  const std::uint64_t budget = target_m * 16 + 64;
  for (std::uint64_t tries = 0; tries < budget && placed < target_m; ++tries) {
    const Node u = static_cast<Node>(prf.word_below(0x626464, counter++, n));
    const Node v = static_cast<Node>(prf.word_below(0x626464, counter++, n));
    if (u == v || deg[u] >= max_deg || deg[v] >= max_deg) continue;
    edges.push_back({u, v});
    ++deg[u];
    ++deg[v];
    ++placed;
  }
  return Graph::from_edges(n, edges);
}

Graph caterpillar_forest(Node spine, Node legs_per_node, Node copies) {
  require(spine >= 1, "caterpillar needs spine >= 1");
  const Node per_copy = spine * (1 + legs_per_node);
  const Node n = per_copy * copies;
  std::vector<Edge> edges;
  for (Node c = 0; c < copies; ++c) {
    const Node base = c * per_copy;
    for (Node s = 0; s + 1 < spine; ++s) {
      edges.push_back({static_cast<Node>(base + s),
                       static_cast<Node>(base + s + 1)});
    }
    for (Node s = 0; s < spine; ++s) {
      for (Node l = 0; l < legs_per_node; ++l) {
        edges.push_back(
            {static_cast<Node>(base + s),
             static_cast<Node>(base + spine + s * legs_per_node + l)});
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph balanced_binary_tree(Node n) {
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Node v = 1; v < n; ++v) {
    edges.push_back({static_cast<Node>((v - 1) / 2), v});
  }
  return Graph::from_edges(n, edges);
}

Graph hypercube_graph(std::uint32_t dimension) {
  require(dimension >= 1 && dimension <= 20, "dimension must be in [1,20]");
  const Node n = static_cast<Node>(1u << dimension);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dimension / 2);
  for (Node v = 0; v < n; ++v) {
    for (std::uint32_t b = 0; b < dimension; ++b) {
      const Node w = v ^ (1u << b);
      if (v < w) edges.push_back({v, w});
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace mpcstab
