#include "graph/balls.h"

#include <algorithm>
#include <deque>
#include <map>

#include "graph/ops.h"
#include "support/check.h"

namespace mpcstab {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Node v,
                                         std::uint32_t r) {
  constexpr std::uint32_t kInf = 0xffffffffu;
  require(v < g.n(), "center out of range");
  std::vector<std::uint32_t> dist(g.n(), kInf);
  dist[v] = 0;
  std::deque<Node> queue{v};
  while (!queue.empty()) {
    Node u = queue.front();
    queue.pop_front();
    if (dist[u] >= r) continue;
    for (Node w : g.neighbors(u)) {
      if (dist[w] == kInf) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

Ball extract_ball(const LegalGraph& g, Node v, std::uint32_t r) {
  const auto dist = bfs_distances(g.graph(), v, r);
  std::vector<Node> members;
  for (Node w = 0; w < g.n(); ++w) {
    if (dist[w] != 0xffffffffu) members.push_back(w);
  }
  InducedSubgraph sub = induced_subgraph(g.graph(), members);
  std::vector<NodeId> ids;
  std::vector<NodeName> names;
  Node center = 0;
  for (Node i = 0; i < sub.to_parent.size(); ++i) {
    ids.push_back(g.id(sub.to_parent[i]));
    names.push_back(g.name(sub.to_parent[i]));
    if (sub.to_parent[i] == v) center = i;
  }
  return Ball{LegalGraph::make(std::move(sub.graph), std::move(ids),
                               std::move(names)),
              center, std::move(sub.to_parent), r};
}

bool balls_identical(const Ball& a, const Ball& b) {
  if (a.graph.n() != b.graph.n()) return false;
  if (a.graph.id(a.center) != b.graph.id(b.center)) return false;
  // Build ID-keyed adjacency for both; compare as sorted structures.
  auto adjacency_by_id = [](const Ball& ball) {
    std::map<NodeId, std::vector<NodeId>> adj;
    for (Node v = 0; v < ball.graph.n(); ++v) {
      std::vector<NodeId> nb;
      for (Node w : ball.graph.graph().neighbors(v)) {
        nb.push_back(ball.graph.id(w));
      }
      std::sort(nb.begin(), nb.end());
      const bool inserted = adj.emplace(ball.graph.id(v), std::move(nb)).second;
      ensure(inserted, "ball IDs must be unique (connected legal subgraph)");
    }
    return adj;
  };
  return adjacency_by_id(a) == adjacency_by_id(b);
}

bool radius_identical(const LegalGraph& ga, Node va, const LegalGraph& gb,
                      Node vb, std::uint32_t radius) {
  return balls_identical(extract_ball(ga, va, radius),
                         extract_ball(gb, vb, radius));
}

}  // namespace mpcstab
